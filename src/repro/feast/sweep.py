"""Parameter sweeps and parallel experiment execution.

The canonical experiments (`repro.feast.experiments`) cover the paper;
this module is for everything else one wants to ask the harness:

* :func:`sweep_field` / :func:`sweep_grid` — derive families of
  experiment configs by varying one field or a cartesian grid of fields
  (both on the experiment config and on its nested graph config);
* :func:`run_experiments` — execute a list of configs, optionally across
  worker processes: either one config per worker (``processes``; configs
  with in-process ``graph_factory`` closures are not picklable and force
  serial mode) or one config at a time with its trials fanned out
  (``jobs``, via :mod:`repro.feast.parallel`).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import fields, replace
from multiprocessing import Pool
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import ExperimentError
from repro.feast.config import ExperimentConfig
from repro.feast.instrumentation import Instrumentation
from repro.feast.runner import ExperimentResult, run_experiment
from repro.graph.generator import RandomGraphConfig
from repro.obs import Telemetry, write_events

#: Fields that live on the nested RandomGraphConfig rather than the
#: experiment config itself.
_GRAPH_FIELDS = {f.name for f in fields(RandomGraphConfig)}
_CONFIG_FIELDS = {f.name for f in fields(ExperimentConfig)}


def _apply(config: ExperimentConfig, name: str, value: Any) -> ExperimentConfig:
    if name in _CONFIG_FIELDS:
        return replace(config, **{name: value})
    if name in _GRAPH_FIELDS:
        return replace(
            config, graph_config=replace(config.graph_config, **{name: value})
        )
    raise ExperimentError(
        f"unknown sweep field {name!r}; not on ExperimentConfig or "
        "RandomGraphConfig"
    )


def _suffix(name: str, value: Any) -> str:
    text = str(value).replace(" ", "")
    return f"{name}={text}"


def sweep_field(
    base: ExperimentConfig,
    field_name: str,
    values: Sequence[Any],
) -> List[ExperimentConfig]:
    """One config per value of ``field_name``.

    The field may belong to the experiment config (e.g. ``topology``,
    ``policy``) or to the nested graph config (e.g.
    ``overall_laxity_ratio``, ``communication_to_computation_ratio``).
    Derived configs get distinguishing names.
    """
    if not values:
        raise ExperimentError("sweep needs at least one value")
    out = []
    for value in values:
        derived = _apply(base, field_name, value)
        out.append(
            replace(derived, name=f"{base.name}-{_suffix(field_name, value)}")
        )
    return out


def sweep_grid(
    base: ExperimentConfig,
    grid: Mapping[str, Sequence[Any]],
) -> List[ExperimentConfig]:
    """Cartesian product over several fields, one config per combination."""
    if not grid:
        raise ExperimentError("sweep grid is empty")
    names = list(grid)
    out = []
    for combo in itertools.product(*(grid[n] for n in names)):
        config = base
        for name, value in zip(names, combo):
            config = _apply(config, name, value)
        suffix = "-".join(_suffix(n, v) for n, v in zip(names, combo))
        out.append(replace(config, name=f"{base.name}-{suffix}"))
    return out


def _checkpoint_path(
    checkpoint_dir: str, config: ExperimentConfig, backend: Optional[str]
) -> str:
    # The subprocess backend journals one file per shard under a
    # directory; everything else journals a single file.
    if backend == "subprocess":
        return os.path.join(checkpoint_dir, f"{config.name}.shards")
    return os.path.join(checkpoint_dir, f"{config.name}.ckpt")


def trace_path(trace_dir: str, config: ExperimentConfig) -> str:
    """The event-log path of one config under ``trace_dir``."""
    return os.path.join(trace_dir, f"{config.name}.events.jsonl")


def status_path(trace_dir: str, config: ExperimentConfig) -> str:
    """The live status-stream path of one config under ``trace_dir``."""
    return os.path.join(trace_dir, f"{config.name}.status.jsonl")


def registry_record(
    run_id: str,
    result: ExperimentResult,
    inst: Instrumentation,
    backend: Optional[str] = None,
    shards: int = 0,
    started: float = 0.0,
    trace: str = "",
):
    """Build the run-registry record of one finished run.

    Bridges the feast-side result/instrumentation objects into the
    feast-free :class:`repro.obs.registry.RunRecord`, including the
    config fingerprint (record-determining fields only) and the
    order-sensitive digest of the canonical records.
    """
    from repro.feast.persistence import config_fingerprint
    from repro.obs.registry import RunRecord, records_digest

    config = result.config
    return RunRecord(
        run_id=run_id,
        experiment=config.name,
        fingerprint=config_fingerprint(config),
        backend=backend or ("serial" if result.jobs == 1 else "pool"),
        jobs=result.jobs,
        shards=shards,
        started=started,
        wall_seconds=inst.wall_elapsed,
        n_trials=inst.trials_completed,
        n_records=len(result.records),
        streamed_trials=result.streamed_trials,
        replayed_trials=inst.replayed_trials,
        failures=len(result.failures),
        retries=inst.retries,
        quarantined=inst.quarantined,
        phase_seconds=inst.timings.as_dict(),
        supervision=(
            {}
            if result.supervision is None  # classic serial path
            else {
                k: float(v)
                for k, v in result.supervision.as_dict().items()
            }
        ),
        records_digest=records_digest(result.records),
        trace_path=trace,
    )


def run_summary(
    result: ExperimentResult, inst: Instrumentation
) -> Dict[str, Any]:
    """The ``summary`` event of one finished run's event log."""
    return {
        "jobs": result.jobs,
        "n_records": len(result.records),
        "elapsed_seconds": result.elapsed_seconds,
        "wall_elapsed_seconds": inst.wall_elapsed,
        "phase_seconds_total": inst.timings.total,
        "trials_replayed": inst.replayed_trials,
        "retries": inst.retries,
        "quarantined": inst.quarantined,
        "pool_respawns": inst.pool_respawns,
        "parallel_efficiency": inst.parallel_efficiency(result.jobs),
    }


def write_run_events(
    path: str, result: ExperimentResult, inst: Instrumentation
) -> List[Dict[str, Any]]:
    """Write one traced run's event log (spans, metrics, resources,
    failures, summary) to ``path`` and return the events.

    ``inst`` must be the run's :class:`Instrumentation` and must carry
    the :class:`~repro.obs.Telemetry` the run recorded into.
    """
    if inst.telemetry is None:
        raise ExperimentError(
            "cannot write an event log: the run's Instrumentation has no "
            "Telemetry attached (pass Instrumentation(telemetry=Telemetry()))"
        )
    return write_events(
        path,
        inst.telemetry,
        result.config.name,
        summary=run_summary(result, inst),
        failures=[f.as_dict() for f in result.failures],
    )


def run_experiments(
    configs: Sequence[ExperimentConfig],
    processes: int = 1,
    progress: Optional[Callable[[int, int], None]] = None,
    jobs: int = 1,
    checkpoint_dir: Optional[str] = None,
    trace_dir: Optional[str] = None,
    backend: Optional[str] = None,
    shards: int = 2,
) -> List[ExperimentResult]:
    """Run many experiments, optionally in parallel worker processes.

    Two parallelism axes, mutually exclusive:

    * ``processes > 1`` distributes whole configs over a process pool
      (best for many small configs); results come back in input order.
      Configs carrying a ``graph_factory`` (arbitrary closures) are not
      picklable, so their presence falls back to serial execution.
    * ``jobs > 1`` runs configs one after another but fans each config's
      *trials* out over worker processes (best for few large configs);
      see :func:`repro.feast.runner.run_experiment`.

    ``checkpoint_dir`` makes the batch resumable: each config journals
    its completed chunks to ``<dir>/<config name>.ckpt``, so re-running
    the same call after an interruption re-runs only the missing work
    (config names must therefore be unique, which
    :func:`sweep_field`/:func:`sweep_grid` guarantee). Incompatible with
    ``processes > 1``.

    ``trace_dir`` enables telemetry: each config records spans, metrics,
    and resource samples and writes them to ``<dir>/<config
    name>.events.jsonl`` (inspect with ``repro report`` / ``repro
    trace``). Like checkpointing it needs the run to happen in this
    process, so it is incompatible with ``processes > 1``.

    ``backend`` routes every config through a named execution backend
    (:mod:`repro.feast.backends`; e.g. ``"subprocess"`` with ``shards``
    worker processes per config). Like checkpointing it needs the runs
    coordinated from this process, so it is incompatible with
    ``processes > 1``.

    ``progress`` is called with (completed configs, total) — per-trial
    progress is only available through
    :func:`repro.feast.runner.run_experiment` directly.
    """
    if processes < 1:
        raise ExperimentError(f"processes must be >= 1, got {processes}")
    if backend is not None and processes > 1:
        raise ExperimentError(
            "backend selection coordinates runs from this process; it "
            "cannot be combined with processes>1"
        )
    if processes > 1 and jobs != 1:
        raise ExperimentError(
            "choose one parallelism axis: processes>1 (configs across "
            "workers) or jobs!=1 (trials across workers), not both"
        )
    if checkpoint_dir is not None and processes > 1:
        raise ExperimentError(
            "checkpoint_dir requires the jobs axis (trial-level "
            "checkpointing); it cannot be combined with processes>1"
        )
    if trace_dir is not None and processes > 1:
        raise ExperimentError(
            "trace_dir records telemetry in the parent process; it cannot "
            "be combined with processes>1 (use the jobs axis instead)"
        )
    configs = list(configs)
    if not configs:
        return []
    if checkpoint_dir is not None or trace_dir is not None:
        names = [c.name for c in configs]
        if len(set(names)) != len(names):
            raise ExperimentError(
                "checkpoint_dir/trace_dir need unique config names, got "
                f"duplicates: "
                f"{sorted(n for n in set(names) if names.count(n) > 1)}"
            )
    if checkpoint_dir is not None:
        os.makedirs(checkpoint_dir, exist_ok=True)
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    parallel = processes > 1 and all(
        c.graph_factory is None for c in configs
    )
    results: List[ExperimentResult] = []
    if parallel:
        with Pool(processes=min(processes, len(configs))) as pool:
            for index, result in enumerate(
                pool.imap(run_experiment, configs)
            ):
                results.append(result)
                if progress is not None:
                    progress(index + 1, len(configs))
        return results
    for index, config in enumerate(configs):
        checkpoint = (
            _checkpoint_path(checkpoint_dir, config, backend)
            if checkpoint_dir is not None else None
        )
        inst = (
            Instrumentation(telemetry=Telemetry())
            if trace_dir is not None else None
        )
        result = run_experiment(
            config, jobs=jobs, checkpoint=checkpoint, instrumentation=inst,
            backend=backend, shards=shards,
        )
        if trace_dir is not None:
            write_run_events(trace_path(trace_dir, config), result, inst)
        results.append(result)
        if progress is not None:
            progress(index + 1, len(configs))
    return results
