"""Parameter sweeps and parallel experiment execution.

The canonical experiments (`repro.feast.experiments`) cover the paper;
this module is for everything else one wants to ask the harness:

* :func:`sweep_field` / :func:`sweep_grid` — derive families of
  experiment configs by varying one field or a cartesian grid of fields
  (both on the experiment config and on its nested graph config);
* :func:`run_experiments` — execute a list of configs, optionally across
  worker processes: either one config per worker (``processes``; configs
  with in-process ``graph_factory`` closures are not picklable and force
  serial mode) or one config at a time with its trials fanned out
  (``jobs``, via :mod:`repro.feast.parallel`).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import fields, replace
from multiprocessing import Pool
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import ExperimentError
from repro.feast.config import ExperimentConfig
from repro.feast.runner import ExperimentResult, run_experiment
from repro.graph.generator import RandomGraphConfig

#: Fields that live on the nested RandomGraphConfig rather than the
#: experiment config itself.
_GRAPH_FIELDS = {f.name for f in fields(RandomGraphConfig)}
_CONFIG_FIELDS = {f.name for f in fields(ExperimentConfig)}


def _apply(config: ExperimentConfig, name: str, value: Any) -> ExperimentConfig:
    if name in _CONFIG_FIELDS:
        return replace(config, **{name: value})
    if name in _GRAPH_FIELDS:
        return replace(
            config, graph_config=replace(config.graph_config, **{name: value})
        )
    raise ExperimentError(
        f"unknown sweep field {name!r}; not on ExperimentConfig or "
        "RandomGraphConfig"
    )


def _suffix(name: str, value: Any) -> str:
    text = str(value).replace(" ", "")
    return f"{name}={text}"


def sweep_field(
    base: ExperimentConfig,
    field_name: str,
    values: Sequence[Any],
) -> List[ExperimentConfig]:
    """One config per value of ``field_name``.

    The field may belong to the experiment config (e.g. ``topology``,
    ``policy``) or to the nested graph config (e.g.
    ``overall_laxity_ratio``, ``communication_to_computation_ratio``).
    Derived configs get distinguishing names.
    """
    if not values:
        raise ExperimentError("sweep needs at least one value")
    out = []
    for value in values:
        derived = _apply(base, field_name, value)
        out.append(
            replace(derived, name=f"{base.name}-{_suffix(field_name, value)}")
        )
    return out


def sweep_grid(
    base: ExperimentConfig,
    grid: Mapping[str, Sequence[Any]],
) -> List[ExperimentConfig]:
    """Cartesian product over several fields, one config per combination."""
    if not grid:
        raise ExperimentError("sweep grid is empty")
    names = list(grid)
    out = []
    for combo in itertools.product(*(grid[n] for n in names)):
        config = base
        for name, value in zip(names, combo):
            config = _apply(config, name, value)
        suffix = "-".join(_suffix(n, v) for n, v in zip(names, combo))
        out.append(replace(config, name=f"{base.name}-{suffix}"))
    return out


def _checkpoint_path(checkpoint_dir: str, config: ExperimentConfig) -> str:
    return os.path.join(checkpoint_dir, f"{config.name}.ckpt")


def run_experiments(
    configs: Sequence[ExperimentConfig],
    processes: int = 1,
    progress: Optional[Callable[[int, int], None]] = None,
    jobs: int = 1,
    checkpoint_dir: Optional[str] = None,
) -> List[ExperimentResult]:
    """Run many experiments, optionally in parallel worker processes.

    Two parallelism axes, mutually exclusive:

    * ``processes > 1`` distributes whole configs over a process pool
      (best for many small configs); results come back in input order.
      Configs carrying a ``graph_factory`` (arbitrary closures) are not
      picklable, so their presence falls back to serial execution.
    * ``jobs > 1`` runs configs one after another but fans each config's
      *trials* out over worker processes (best for few large configs);
      see :func:`repro.feast.runner.run_experiment`.

    ``checkpoint_dir`` makes the batch resumable: each config journals
    its completed chunks to ``<dir>/<config name>.ckpt``, so re-running
    the same call after an interruption re-runs only the missing work
    (config names must therefore be unique, which
    :func:`sweep_field`/:func:`sweep_grid` guarantee). Incompatible with
    ``processes > 1``.

    ``progress`` is called with (completed configs, total) — per-trial
    progress is only available through
    :func:`repro.feast.runner.run_experiment` directly.
    """
    if processes < 1:
        raise ExperimentError(f"processes must be >= 1, got {processes}")
    if processes > 1 and jobs != 1:
        raise ExperimentError(
            "choose one parallelism axis: processes>1 (configs across "
            "workers) or jobs!=1 (trials across workers), not both"
        )
    if checkpoint_dir is not None and processes > 1:
        raise ExperimentError(
            "checkpoint_dir requires the jobs axis (trial-level "
            "checkpointing); it cannot be combined with processes>1"
        )
    configs = list(configs)
    if not configs:
        return []
    if checkpoint_dir is not None:
        names = [c.name for c in configs]
        if len(set(names)) != len(names):
            raise ExperimentError(
                "checkpoint_dir needs unique config names, got duplicates: "
                f"{sorted(n for n in set(names) if names.count(n) > 1)}"
            )
        os.makedirs(checkpoint_dir, exist_ok=True)
    parallel = processes > 1 and all(
        c.graph_factory is None for c in configs
    )
    results: List[ExperimentResult] = []
    if parallel:
        with Pool(processes=min(processes, len(configs))) as pool:
            for index, result in enumerate(
                pool.imap(run_experiment, configs)
            ):
                results.append(result)
                if progress is not None:
                    progress(index + 1, len(configs))
        return results
    for index, config in enumerate(configs):
        checkpoint = (
            _checkpoint_path(checkpoint_dir, config)
            if checkpoint_dir is not None else None
        )
        results.append(run_experiment(config, jobs=jobs, checkpoint=checkpoint))
        if progress is not None:
            progress(index + 1, len(configs))
    return results
