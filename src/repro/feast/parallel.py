"""The experiment orchestrator over pluggable execution backends.

Historically this module *was* the parallel engine — work-unit
contract, process-pool supervisor, and canonical reassembly in one
file. The engine now lives in :mod:`repro.feast.backends` (the
work-unit contract in ``backends.work``, the shared chunk driver in
``backends.base``, one module per backend); what remains here is the
orchestration that every backend shares, plus re-exports of the moved
names so existing imports keep working.

:func:`run_parallel_experiment` is the supervised engine behind
``run_experiment``: it resolves the backend (``serial`` for one job,
``pool`` for many, or any registered name passed explicitly), opens the
run span, hands the backend an
:class:`~repro.feast.backends.ExecutionRequest`, and assembles the
returned chunks into canonical records — byte-identical across
backends, worker counts, and shard counts. See the package docstring of
:mod:`repro.feast.backends` for the guarantees, and DESIGN.md §9 for
the determinism argument.

Streaming
---------
``record_sink`` switches the engine into streaming mode: every
completed chunk's records are folded into the sink (in canonical
size → method order within the chunk) as the chunk completes —
including chunks replayed from a checkpoint — and then dropped, so
peak resident records are bounded by the chunk size, not the sweep
size. The result carries no record list (``records == []``,
``streamed_trials`` counts what flowed through); pair it with
:class:`repro.feast.aggregate.StreamingAggregator` for paper-scale
sweeps whose aggregates are all you keep.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.errors import ExperimentError
from repro.obs import live as obs_live
from repro.obs import runtime as obs
from repro.obs.resources import sample_resources
from repro.feast.config import ExperimentConfig
from repro.feast.instrumentation import Instrumentation
from repro.feast.runner import ExperimentResult, TrialRecord

# Re-exports: this module's original public (and commonly used) names,
# now implemented in repro.feast.backends.
from repro.feast.backends.base import (  # noqa: F401
    BackendOutcome,
    ChunkDriver,
    ExecutionBackend,
    ExecutionRequest,
    assemble_records,
)
from repro.feast.backends.work import (  # noqa: F401
    ChunkKey,
    ChunkResult,
    RetryPolicy,
    TrialSpec,
    default_jobs,
    execute_chunk,
    is_parallelizable,
    resolve_jobs,
    run_chunk,
)
from repro.feast.backends import make_backend  # noqa: F401

#: Streaming record hook: called once per record, as chunks complete.
RecordSink = Callable[[TrialRecord], None]


def run_parallel_experiment(
    config: ExperimentConfig,
    jobs: Optional[int] = None,
    progress=None,
    instrumentation: Optional[Instrumentation] = None,
    checkpoint: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
    fallback_reason: Optional[str] = None,
    backend: Optional[str] = None,
    shards: int = 2,
    record_sink: Optional[RecordSink] = None,
) -> ExperimentResult:
    """Execute ``config`` on an execution backend, fault-tolerantly.

    Prefer calling :func:`repro.feast.runner.run_experiment`, which
    handles serial fallback; this is the engine behind it. ``backend``
    names a registered backend (default: ``"serial"`` when the resolved
    ``jobs`` is 1, else ``"pool"``); ``shards`` only matters to the
    ``subprocess`` backend. Records come back in canonical serial order
    regardless of backend; quarantined chunks' trials are omitted and
    listed in ``ExperimentResult.quarantined``. With ``record_sink``
    set, records stream through the sink instead (see module
    docstring).
    """
    started = time.perf_counter()
    n_jobs = resolve_jobs(jobs)
    backend_name = backend if backend is not None else (
        "serial" if n_jobs == 1 else "pool"
    )
    engine = make_backend(backend_name)

    inst = instrumentation if instrumentation is not None else Instrumentation()
    if progress is not None:
        inst.add_progress(progress)
    policy = retry if retry is not None else RetryPolicy.from_config(config)

    on_chunk = None
    keep_records = True
    if record_sink is not None:
        keep_records = False

        def on_chunk(key: ChunkKey, chunk) -> None:
            # Canonical order *within* the chunk; chunk arrival order is
            # backend-dependent, so sinks must be order-independent
            # across chunks (StreamingAggregator is).
            for n_processors in config.system_sizes:
                for method in config.methods:
                    record_sink(chunk.records[(n_processors, method.label)])

    request = ExecutionRequest(
        config=config,
        instrumentation=inst,
        policy=policy,
        checkpoint=checkpoint,
        jobs=n_jobs,
        shards=shards,
        supervised=True,
        on_chunk=on_chunk,
        keep_records=keep_records,
    )
    engine.prepare(request)
    inst.start(config.n_trials)

    parent_sample = (
        sample_resources() if inst.telemetry is not None else None
    )
    with obs.activate(inst.telemetry):
        with obs.toplevel_span(
            "run", experiment=config.name, jobs=n_jobs,
            engine=backend_name,
        ):
            outcome = engine.run(request)
        # Supervision outcomes become counters exactly once, here in
        # the parent (never inside drivers/workers, whose metrics are
        # adopted into this session and would double-count).
        for name, value in outcome.supervision.as_dict().items():
            if value:
                obs.count(f"supervision.{name}", value)
        if outcome.supervision.any():
            # One terminal supervision summary on the live stream, so a
            # watcher that missed the transitions still sees the totals.
            obs_live.publish(
                "supervision", event="summary", ident="run",
                detail=", ".join(
                    f"{name}={value}"
                    for name, value in outcome.supervision.as_dict().items()
                    if value
                ),
            )
        if parent_sample is not None:
            used = sample_resources().delta(parent_sample)
            obs.gauge("parent.rss_max_kb", used.rss_max_kb)
            inst.telemetry.resources.append(used)
    inst.finish()

    quarantined = sorted(
        outcome.quarantined,
        key=lambda k: (config.scenarios.index(k[0]), k[1]),
    )
    expected = config.n_trials - config.trials_per_graph * len(quarantined)
    records: List[TrialRecord] = []
    if keep_records:
        records = assemble_records(config, outcome.chunks, outcome.quarantined)
        if len(records) != expected:
            raise ExperimentError(
                f"experiment {config.name!r} produced {len(records)} records "
                f"but planned {expected}"
            )
    elif outcome.streamed_trials != expected:
        raise ExperimentError(
            f"experiment {config.name!r} streamed {outcome.streamed_trials} "
            f"records but planned {expected}"
        )
    if outcome.degraded_reason is not None and fallback_reason is None:
        fallback_reason = outcome.degraded_reason
    return ExperimentResult(
        config=config,
        records=records,
        elapsed_seconds=time.perf_counter() - started,
        timings=inst.timings,
        jobs=n_jobs,
        failures=list(outcome.failures),
        quarantined=quarantined,
        fallback_reason=fallback_reason,
        streamed_trials=outcome.streamed_trials,
        supervision=outcome.supervision,
    )
