"""Fault-tolerant parallel experiment execution over a process pool.

The serial runner iterates scenario → size → method → graph in one
4-deep loop; paper-scale sweeps (Figures 2–5: 128 graphs × 9 sizes × 3
scenarios × several methods) bottleneck on one core. This engine fans
the same trials out over a :class:`~concurrent.futures.ProcessPoolExecutor`
while guaranteeing **record identity**: ``run_experiment(config, jobs=N)``
returns exactly the records a serial run returns, in exactly the serial
order, for any ``N``.

Work unit
---------
One :class:`TrialSpec` covers *all* (size × method) trials of a single
(scenario, graph-index) pair:

* the spec is tiny and picklable — the worker regenerates the graph from
  the per-(scenario, index) seed (:func:`repro.feast.runner.trial_seed`),
  so no task graph ever crosses the pipe;
* size-independent deadline distributions are computed once per method
  inside the chunk, preserving the serial runner's reuse semantics (the
  cache is per-graph in both engines, so cached work is never recomputed
  differently);
* each worker times its own generate/distribute/schedule phases and
  ships a :class:`~repro.feast.instrumentation.PhaseTimings` back with
  its records; the parent merges them and fires progress callbacks as
  chunks arrive over the executor's results queue.

Determinism
-----------
Chunks complete in arbitrary order; the parent buffers them keyed by
(scenario, index) and reassembles the canonical serial order
scenario → size → method → index before returning. Combined with the
seeding contract, parallel output is byte-identical to serial output.

Fault tolerance
---------------
A supervisor (:class:`_ChunkSupervisor`) sits between the specs and the
pool so that one bad trial can no longer take down a paper-scale sweep:

* **Trial timeouts** — ``config.trial_timeout`` gives every trial a
  wall-clock budget, enforced cooperatively inside workers via
  :mod:`repro.budget` (the branch-and-bound scheduler polls it and falls
  back to its list-scheduler incumbent) and, for hard hangs, by the
  parent killing any chunk that overruns its whole-chunk budget.
* **Retry with backoff** — a failed chunk is resubmitted with
  exponential backoff, up to ``config.max_retries`` retries. The same
  exception on two consecutive attempts marks the fault deterministic
  and quarantines the chunk immediately; transient faults (killed
  workers, broken pools) get their full retry allowance.
* **Quarantine over crash** — a chunk that exhausts its attempts is
  quarantined: its trials are recorded as
  :class:`~repro.feast.instrumentation.TrialFailure` events in
  ``ExperimentResult.failures``/``.quarantined`` and the sweep keeps
  going. The run always completes.
* **Pool supervision** — a :class:`BrokenProcessPool` respawns the
  executor and requeues in-flight chunks. Crash *attribution* uses
  probation: after a multi-chunk pool death the suspects re-run one at a
  time, so the chunk that keeps killing workers consumes attempts while
  innocent bystanders are requeued free of charge. After
  ``RetryPolicy.max_pool_respawns`` deaths the engine degrades to
  in-process serial execution with an :class:`ExperimentWarning` instead
  of aborting.
* **Checkpoint/resume** — with ``checkpoint=path`` every completed chunk
  is journaled (append-only, fsynced) as it arrives; a rerun replays the
  journal, re-runs only the missing chunks, and returns records
  byte-identical to an uninterrupted run. See
  :class:`~repro.feast.persistence.CheckpointJournal`.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import budget
from repro.errors import (
    ExperimentError,
    ExperimentWarning,
    TrialTimeoutError,
    WorkerCrashError,
)
from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.resources import ResourceSample, sample_resources
from repro.obs.spans import Span
from repro.feast.config import ExperimentConfig, speeds_for
from repro.feast.instrumentation import (
    Instrumentation,
    PhaseTimings,
    TrialFailure,
)
from repro.feast.runner import (
    ExperimentResult,
    TrialRecord,
    distribute_for_trial,
    graph_for_trial,
    make_record,
    prefetch_distributions,
    run_trial,
)
from repro.machine.system import System
from repro.machine.topology import make_interconnect

#: Chunk coordinates: (scenario, graph index).
ChunkKey = Tuple[str, int]


def default_jobs() -> int:
    """The cpu_count-aware default worker count (>= 1)."""
    return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request: ``None``/``0`` means all cores.

    Values above the machine's core count are allowed (the pool is
    capped at one worker per chunk anyway); negatives are rejected.
    """
    if jobs is None or jobs == 0:
        return default_jobs()
    if jobs < 0:
        raise ExperimentError(f"jobs must be >= 0, got {jobs}")
    return jobs


def is_parallelizable(config: ExperimentConfig) -> bool:
    """Whether ``config`` can cross a process boundary.

    Configs are plain data except ``graph_factory``, which may be an
    unpicklable in-process closure; those run serially instead.
    """
    if config.graph_factory is None:
        return True
    try:
        pickle.dumps(config)
    except Exception:
        return False
    return True


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor reacts to chunk failures.

    The default comes from the experiment config
    (:meth:`from_config`: ``max_attempts = config.max_retries + 1``);
    pass an explicit policy to tune backoff or pool-respawn limits.
    """

    #: Total attempts per chunk (first run + retries) before quarantine.
    max_attempts: int = 3
    #: First-retry backoff delay, seconds.
    backoff_base: float = 0.25
    #: Multiplier applied per further retry.
    backoff_factor: float = 2.0
    #: Backoff ceiling, seconds.
    backoff_max: float = 4.0
    #: Pool deaths tolerated before degrading to in-process execution.
    max_pool_respawns: int = 8
    #: Extra seconds granted on top of the per-chunk budget
    #: (``trial_timeout × trials_per_graph``) before the parent kills an
    #: overdue chunk; covers graph generation and scheduling jitter.
    timeout_grace: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExperimentError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ExperimentError("backoff delays must be >= 0")
        if self.max_pool_respawns < 0:
            raise ExperimentError(
                f"max_pool_respawns must be >= 0, got {self.max_pool_respawns}"
            )

    @classmethod
    def from_config(cls, config: ExperimentConfig) -> "RetryPolicy":
        return cls(max_attempts=config.max_retries + 1)

    def backoff(self, attempt: int) -> float:
        """Delay before resubmitting after the ``attempt``-th failure."""
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )


@dataclass(frozen=True)
class TrialSpec:
    """One worker work unit: every (size × method) trial of one graph.

    Carries only the (picklable) config plus the (scenario, index)
    coordinates; the worker regenerates the graph from its seed.
    """

    config: ExperimentConfig
    scenario: str
    index: int


@dataclass
class ChunkResult:
    """One completed :class:`TrialSpec`: records keyed for reassembly."""

    scenario: str
    index: int
    #: (n_processors, method label) → record, for canonical reordering.
    records: Dict[Tuple[int, str], TrialRecord] = field(default_factory=dict)
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    #: Non-fatal fault events observed inside the worker (slow trials).
    failures: List[TrialFailure] = field(default_factory=list)
    #: Telemetry recorded inside the worker when tracing is on: the
    #: chunk's finished span tree, its local metrics registry, and its
    #: resource-use delta. All empty/None on untraced runs.
    spans: List[Span] = field(default_factory=list)
    metrics: Optional[MetricsRegistry] = None
    resources: List[ResourceSample] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.records)


def run_chunk(
    spec: TrialSpec,
    trial_timeout: Optional[float] = None,
    attempt: int = 0,
    trace: bool = False,
) -> ChunkResult:
    """Execute one chunk (runs inside a worker process).

    Mirrors the serial loop's per-graph work exactly: same seeds, same
    distribution reuse, same metrics — only the loop nesting differs,
    which the parent undoes when reassembling. ``config.batch`` prefetches
    the chunk's distributions through the batch kernel first, exactly as
    the serial loop does per scenario (bit-identical records either way). Each (size × method)
    trial runs under a cooperative wall-clock budget of
    ``trial_timeout`` seconds (default: the config's); a trial that
    completes past its budget is kept but flagged with a ``slow-trial``
    failure event.

    With ``trace=True`` the worker records a local telemetry session —
    a ``chunk`` span holding one ``trial`` span per (size × method),
    each with ``generate``/``distribute``/``schedule`` children plus
    whatever deeper components report (B&B search spans, cache
    counters) — samples its own RSS/CPU around the chunk, and ships
    everything back on the :class:`ChunkResult`. Tracing never changes
    the records: the measured pipeline is identical either way.
    """
    config = spec.config
    timeout = trial_timeout if trial_timeout is not None else config.trial_timeout
    inst = Instrumentation()
    chunk = ChunkResult(scenario=spec.scenario, index=spec.index,
                        timings=inst.timings)
    telemetry = obs.Telemetry() if trace else None
    before = sample_resources() if trace else None
    with obs.activate(telemetry):
        with obs.span("chunk", scenario=spec.scenario, index=spec.index,
                      attempt=attempt) as chunk_span:
            graph_config = config.graph_config.with_scenario(spec.scenario)
            with inst.phase("generate"):
                graph = graph_for_trial(
                    config, graph_config, spec.scenario, spec.index
                )
            distributors = {
                method.label: method.build() for method in config.methods
            }
            reusable: Dict[object, object] = {}
            prefetched: Optional[Dict[object, object]] = None
            if config.batch:
                with inst.phase("distribute"):
                    prefetched = prefetch_distributions(
                        config, [graph], reusable, indices=[spec.index]
                    )
            for n_processors in config.system_sizes:
                speeds = speeds_for(config.speed_profile, n_processors)
                system = System(
                    n_processors,
                    interconnect=make_interconnect(
                        config.topology, n_processors
                    ),
                    speeds=speeds,
                )
                total_capacity = float(sum(speeds))
                for method in config.methods:
                    with obs.span("trial", n_processors=n_processors,
                                  method=method.label), \
                         budget.trial_deadline(timeout):
                        began = time.perf_counter()
                        with inst.phase("distribute"):
                            assignment = distribute_for_trial(
                                method,
                                distributors[method.label],
                                graph,
                                n_processors,
                                total_capacity,
                                reusable,
                                (method.label, spec.index),
                                prefetched,
                            )
                        obs.observe(
                            f"distribute.seconds.n{graph.n_subtasks}",
                            time.perf_counter() - began,
                        )
                        with inst.phase("schedule"):
                            metrics = run_trial(
                                graph,
                                assignment,
                                system,
                                policy_name=config.policy,
                                respect_release_times=(
                                    config.respect_release_times
                                ),
                            )
                        if budget.expired():
                            obs.count("engine.faults.slow-trial")
                            chunk.failures.append(TrialFailure(
                                scenario=spec.scenario,
                                index=spec.index,
                                kind="slow-trial",
                                message=(
                                    f"trial (n_processors={n_processors}, "
                                    f"method={method.label}) overran its "
                                    f"{timeout:g}s budget; result kept"
                                ),
                            ))
                    chunk.records[(n_processors, method.label)] = make_record(
                        config, spec.scenario, n_processors, method,
                        spec.index, assignment, metrics,
                    )
            obs.count("engine.chunks_completed")
            obs.count("engine.trials_measured", len(chunk.records))
            if chunk_span is not None and before is not None:
                used = sample_resources().delta(before)
                chunk_span.annotate(
                    rss_max_kb=used.rss_max_kb,
                    cpu_user_s=used.cpu_user_s,
                    cpu_system_s=used.cpu_system_s,
                )
                obs.gauge("worker.rss_max_kb", used.rss_max_kb)
                chunk.resources.append(used)
    if telemetry is not None:
        chunk.spans = telemetry.spans.finished()
        chunk.metrics = telemetry.metrics
    return chunk


def _execute_chunk(
    spec: TrialSpec,
    attempt: int,
    trial_timeout: Optional[float],
    trace: bool = False,
) -> ChunkResult:
    """Worker entry point: fault-injection hook + the chunk itself."""
    from repro.feast import faultinject

    faultinject.maybe_inject(spec.scenario, spec.index, attempt)
    return run_chunk(
        spec, trial_timeout=trial_timeout, attempt=attempt, trace=trace
    )


@dataclass
class _ChunkState:
    """Supervisor-side bookkeeping of one chunk's execution attempts."""

    spec: TrialSpec
    #: Failed attempts consumed so far (also the next attempt's number).
    attempt: int = 0
    #: Monotonic time before which the chunk must not be resubmitted.
    eligible_at: float = 0.0
    #: (exception type name, message) of the previous failure.
    last_signature: Optional[Tuple[str, str]] = None
    #: Suspected of killing the pool — re-run alone until cleared.
    suspect: bool = False


class _ChunkSupervisor:
    """Drives every chunk of one experiment to done-or-quarantined."""

    def __init__(
        self,
        config: ExperimentConfig,
        n_jobs: int,
        inst: Instrumentation,
        policy: RetryPolicy,
        journal=None,
    ) -> None:
        self.config = config
        self.n_jobs = n_jobs
        self.inst = inst
        self.policy = policy
        self.journal = journal
        #: Whether workers should record and ship telemetry.
        self.trace = inst.telemetry is not None
        self.states: Dict[ChunkKey, _ChunkState] = {}
        self.waiting: List[ChunkKey] = []
        self.done: Dict[ChunkKey, ChunkResult] = {}
        self.quarantined: Dict[ChunkKey, str] = {}
        self.failures: List[TrialFailure] = []
        self.pool_deaths = 0
        self.degraded_reason: Optional[str] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._inflight: Dict[object, ChunkKey] = {}
        self._started: Dict[ChunkKey, float] = {}
        timeout = config.trial_timeout
        self._chunk_budget: Optional[float] = (
            None if timeout is None
            else timeout * config.trials_per_graph
            + max(policy.timeout_grace, timeout)
        )
        for scenario in config.scenarios:
            for index in range(config.n_graphs):
                key = (scenario, index)
                if journal is not None and key in journal.replayed:
                    replayed = journal.replayed[key]
                    self.done[key] = replayed
                    self.failures.extend(replayed.failures)
                    inst.replayed(replayed.timings, replayed.n_trials)
                    continue
                self.states[key] = _ChunkState(
                    spec=TrialSpec(config=config, scenario=scenario,
                                   index=index)
                )
                self.waiting.append(key)

    # -- outcome handling ----------------------------------------------
    def _complete(self, key: ChunkKey, chunk: ChunkResult) -> None:
        self.states[key].suspect = False
        self.done[key] = chunk
        self.failures.extend(chunk.failures)
        for failure in chunk.failures:
            self.inst.record_failure(failure)
        if self.journal is not None:
            self.journal.append(chunk)
        if self.inst.telemetry is not None:
            # Graft the worker's span tree under the run span and fold
            # its metrics/resource samples into the run's registry.
            self.inst.telemetry.adopt_chunk(
                chunk.spans, chunk.metrics, chunk.resources
            )
        self.inst.absorb(chunk.timings, chunk.n_trials)

    def _fail(self, key: ChunkKey, kind: str, exc: BaseException) -> None:
        """Consume one attempt of ``key``; requeue or quarantine it."""
        state = self.states[key]
        state.attempt += 1
        signature = (type(exc).__name__, str(exc))
        failure = TrialFailure(
            scenario=key[0], index=key[1], kind=kind,
            message=f"{signature[0]}: {signature[1]}",
            attempt=state.attempt,
        )
        self.failures.append(failure)
        self.inst.record_failure(failure)
        deterministic = (
            kind == "exception" and state.last_signature == signature
        )
        state.last_signature = signature
        if deterministic:
            self._quarantine(key, (
                f"deterministic failure (identical exception on "
                f"consecutive attempts): {failure.message}"
            ))
        elif state.attempt >= self.policy.max_attempts:
            self._quarantine(key, (
                f"exhausted {self.policy.max_attempts} attempts; last "
                f"failure ({kind}): {failure.message}"
            ))
        else:
            self.inst.retried()
            state.eligible_at = (
                time.monotonic() + self.policy.backoff(state.attempt)
            )
            self.waiting.append(key)

    def _quarantine(self, key: ChunkKey, reason: str) -> None:
        self.quarantined[key] = reason
        self.inst.quarantine()
        failure = TrialFailure(
            scenario=key[0], index=key[1], kind="quarantine",
            message=reason, attempt=self.states[key].attempt,
        )
        self.failures.append(failure)
        self.inst.record_failure(failure)

    # -- pool management -----------------------------------------------
    def _spawn_pool(self) -> None:
        max_workers = min(self.n_jobs, max(1, len(self.states)))
        self._pool = ProcessPoolExecutor(max_workers=max_workers)

    def _discard_pool(self, kill: bool = False) -> None:
        if self._pool is None:
            return
        if kill:
            for process in list(
                getattr(self._pool, "_processes", {}).values()
            ):
                try:
                    process.kill()
                except Exception:
                    pass
        try:
            self._pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        self._pool = None

    def _submit(self, key: ChunkKey) -> bool:
        state = self.states[key]
        try:
            future = self._pool.submit(
                _execute_chunk, state.spec, state.attempt,
                self.config.trial_timeout, self.trace,
            )
        except BrokenExecutor:
            return False
        self._inflight[future] = key
        self._started[key] = time.monotonic()
        return True

    def _probation(self) -> bool:
        """Whether any chunk is suspected of killing workers."""
        return any(
            self.states[k].suspect
            for k in list(self.waiting) + list(self._inflight.values())
        )

    def _submittable(self, now: float) -> List[ChunkKey]:
        if self._probation():
            if self._inflight:
                return []
            ready = sorted(
                (k for k in self.waiting
                 if self.states[k].suspect
                 and self.states[k].eligible_at <= now),
                key=lambda k: self.states[k].eligible_at,
            )
            return ready[:1]
        return [k for k in self.waiting if self.states[k].eligible_at <= now]

    def _next_eligible(self) -> float:
        keys = (
            [k for k in self.waiting if self.states[k].suspect]
            if self._probation() else self.waiting
        )
        return min(self.states[k].eligible_at for k in keys)

    def _wait_timeout(self, now: float) -> Optional[float]:
        deadlines: List[float] = []
        if self._chunk_budget is not None:
            deadlines.extend(
                started + self._chunk_budget
                for started in self._started.values()
            )
        deadlines.extend(
            self.states[k].eligible_at for k in self.waiting
        )
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - now)

    # -- event handling ------------------------------------------------
    def _drain(self, finished) -> List[ChunkKey]:
        """Process completed futures; return keys hit by a pool break."""
        broken: List[ChunkKey] = []
        for future in finished:
            key = self._inflight.pop(future)
            self._started.pop(key, None)
            try:
                chunk = future.result()
            except BrokenExecutor:
                broken.append(key)
            except Exception as exc:
                self._fail(key, "exception", exc)
            else:
                self._complete(key, chunk)
        return broken

    def _on_pool_break(self, broken: List[ChunkKey]) -> None:
        """A worker died: respawn the pool and requeue in-flight chunks.

        With exactly one victim the crash is attributed to it (an attempt
        is consumed). With several, nobody can tell which chunk killed
        the worker, so all victims are requeued free of charge but marked
        suspect — they then re-run one at a time until each either
        completes or crashes alone (precise attribution).
        """
        victims = list(broken)
        victims.extend(self._inflight.values())
        self._inflight.clear()
        self._started.clear()
        self._discard_pool()
        self.pool_deaths += 1
        self.inst.pool_respawned()
        now = time.monotonic()
        if len(victims) == 1:
            key = victims[0]
            self.states[key].suspect = True
            self._fail(key, "crash", WorkerCrashError(
                f"worker process died while running chunk "
                f"(scenario={key[0]}, graph={key[1]})"
            ))
        else:
            for key in victims:
                state = self.states[key]
                state.suspect = True
                state.eligible_at = now
                self.waiting.append(key)
        if self.pool_deaths > self.policy.max_pool_respawns:
            self.degraded_reason = (
                f"process pool died {self.pool_deaths} times "
                f"(> max_pool_respawns={self.policy.max_pool_respawns}); "
                "degraded to in-process serial execution"
            )
            return
        self._spawn_pool()

    def _check_overdue(self) -> None:
        """Kill the pool if any chunk overran its wall-clock budget."""
        if self._chunk_budget is None or not self._started:
            return
        now = time.monotonic()
        overdue = [
            key for key, started in self._started.items()
            if now - started > self._chunk_budget
        ]
        if not overdue:
            return
        # Collect any results that finished while we were deciding.
        finished, _ = wait(set(self._inflight), timeout=0)
        broken = self._drain(finished)
        if broken:
            self._on_pool_break(broken)
            return
        overdue = [
            key for key, started in self._started.items()
            if now - started > self._chunk_budget
        ]
        if not overdue:
            return
        # The hang is attributed precisely (we know which chunks are
        # overdue), so this deliberate kill does not count as a pool
        # death; innocent in-flight chunks are requeued free of charge.
        self._discard_pool(kill=True)
        survivors = [
            key for key in self._inflight.values() if key not in overdue
        ]
        self._inflight.clear()
        self._started.clear()
        for key in overdue:
            self._fail(key, "timeout", TrialTimeoutError(
                f"chunk (scenario={key[0]}, graph={key[1]}) exceeded its "
                f"{self._chunk_budget:.3g}s budget "
                f"({self.config.trials_per_graph} trials x "
                f"{self.config.trial_timeout:g}s trial timeout)"
            ))
        now = time.monotonic()
        for key in survivors:
            self.states[key].eligible_at = now
            self.waiting.append(key)
        self._spawn_pool()

    # -- main loops ----------------------------------------------------
    def _outstanding(self) -> int:
        return len(self.states) - sum(
            1 for k in self.states if k in self.done or k in self.quarantined
        )

    def run(self, in_process: bool) -> None:
        """Drive every chunk to completion or quarantine."""
        if in_process:
            self._run_in_process()
            return
        self._spawn_pool()
        try:
            while self._outstanding() > 0:
                if self.degraded_reason is not None:
                    warnings.warn(
                        f"experiment {self.config.name!r}: "
                        f"{self.degraded_reason}",
                        ExperimentWarning,
                        stacklevel=3,
                    )
                    self._run_in_process()
                    return
                now = time.monotonic()
                submitted_all = True
                for key in self._submittable(now):
                    self.waiting.remove(key)
                    if not self._submit(key):
                        # The pool broke between waits; requeue and treat
                        # it as a break with no attributable victim.
                        self.waiting.append(key)
                        self._on_pool_break([])
                        submitted_all = False
                        break
                if not submitted_all:
                    continue
                if not self._inflight:
                    # Everything runnable is backing off.
                    delay = self._next_eligible() - time.monotonic()
                    if delay > 0:
                        time.sleep(min(delay, 1.0))
                    continue
                finished, _ = wait(
                    set(self._inflight),
                    timeout=self._wait_timeout(time.monotonic()),
                    return_when=FIRST_COMPLETED,
                )
                broken = self._drain(finished)
                if broken:
                    self._on_pool_break(broken)
                    continue
                self._check_overdue()
        finally:
            self._discard_pool()

    def _run_in_process(self) -> None:
        """Serial fallback: run remaining chunks in this process.

        Exceptions get the same retry/quarantine treatment as in pool
        mode; crash/hang protection requires worker processes and is
        unavailable here (injected crashes are parent-safe by design —
        see :mod:`repro.feast.faultinject`).
        """
        while self.waiting:
            now = time.monotonic()
            key = min(self.waiting, key=lambda k: self.states[k].eligible_at)
            delay = self.states[key].eligible_at - now
            if delay > 0:
                time.sleep(delay)
            self.waiting.remove(key)
            state = self.states[key]
            try:
                chunk = _execute_chunk(
                    state.spec, state.attempt, self.config.trial_timeout,
                    self.trace,
                )
            except Exception as exc:
                self._fail(key, "exception", exc)
            else:
                self._complete(key, chunk)


def run_parallel_experiment(
    config: ExperimentConfig,
    jobs: Optional[int] = None,
    progress=None,
    instrumentation: Optional[Instrumentation] = None,
    checkpoint: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
    fallback_reason: Optional[str] = None,
) -> ExperimentResult:
    """Execute ``config`` over ``jobs`` worker processes, fault-tolerantly.

    Prefer calling :func:`repro.feast.runner.run_experiment` with
    ``jobs=N``, which handles serial fallback; this is the engine behind
    it. ``jobs=1`` runs the chunks in-process (still with retry,
    quarantine, and checkpointing). Records come back in canonical
    serial order; quarantined chunks' trials are omitted and listed in
    ``ExperimentResult.quarantined``.
    """
    started = time.perf_counter()
    n_jobs = resolve_jobs(jobs)
    in_process = n_jobs == 1
    if not in_process and not is_parallelizable(config):
        raise ExperimentError(
            f"experiment {config.name!r} carries an unpicklable "
            "graph_factory; run it with jobs=1"
        )
    inst = instrumentation if instrumentation is not None else Instrumentation()
    if progress is not None:
        inst.add_progress(progress)
    inst.start(config.n_trials)
    policy = retry if retry is not None else RetryPolicy.from_config(config)

    journal = None
    if checkpoint is not None:
        from repro.feast.persistence import CheckpointJournal

        journal = CheckpointJournal(checkpoint, config)
    parent_sample = (
        sample_resources() if inst.telemetry is not None else None
    )
    with obs.activate(inst.telemetry):
        with obs.toplevel_span(
            "run", experiment=config.name, jobs=n_jobs,
            engine="in-process" if in_process else "pool",
        ):
            supervisor = _ChunkSupervisor(
                config, n_jobs, inst, policy, journal
            )
            try:
                supervisor.run(in_process=in_process)
            finally:
                if journal is not None:
                    journal.close()
        if parent_sample is not None:
            used = sample_resources().delta(parent_sample)
            obs.gauge("parent.rss_max_kb", used.rss_max_kb)
            inst.telemetry.resources.append(used)
    inst.finish()

    quarantined = sorted(
        supervisor.quarantined,
        key=lambda k: (config.scenarios.index(k[0]), k[1]),
    )
    records: List[TrialRecord] = []
    for scenario in config.scenarios:
        for n_processors in config.system_sizes:
            for method in config.methods:
                for index in range(config.n_graphs):
                    key = (scenario, index)
                    if key in supervisor.quarantined:
                        continue
                    records.append(
                        supervisor.done[key].records[
                            (n_processors, method.label)
                        ]
                    )
    expected = config.n_trials - config.trials_per_graph * len(quarantined)
    if len(records) != expected:
        raise ExperimentError(
            f"experiment {config.name!r} produced {len(records)} records "
            f"but planned {expected}"
        )
    if supervisor.degraded_reason is not None and fallback_reason is None:
        fallback_reason = supervisor.degraded_reason
    return ExperimentResult(
        config=config,
        records=records,
        elapsed_seconds=time.perf_counter() - started,
        timings=inst.timings,
        jobs=n_jobs,
        failures=list(supervisor.failures),
        quarantined=quarantined,
        fallback_reason=fallback_reason,
    )
