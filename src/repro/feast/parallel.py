"""Parallel experiment execution over a process pool.

The serial runner iterates scenario → size → method → graph in one
4-deep loop; paper-scale sweeps (Figures 2–5: 128 graphs × 9 sizes × 3
scenarios × several methods) bottleneck on one core. This engine fans
the same trials out over a :class:`~concurrent.futures.ProcessPoolExecutor`
while guaranteeing **record identity**: ``run_experiment(config, jobs=N)``
returns exactly the records a serial run returns, in exactly the serial
order, for any ``N``.

Work unit
---------
One :class:`TrialSpec` covers *all* (size × method) trials of a single
(scenario, graph-index) pair:

* the spec is tiny and picklable — the worker regenerates the graph from
  the per-(scenario, index) seed (:func:`repro.feast.runner.trial_seed`),
  so no task graph ever crosses the pipe;
* size-independent deadline distributions are computed once per method
  inside the chunk, preserving the serial runner's reuse semantics (the
  cache is per-graph in both engines, so cached work is never recomputed
  differently);
* each worker times its own generate/distribute/schedule phases and
  ships a :class:`~repro.feast.instrumentation.PhaseTimings` back with
  its records; the parent merges them and fires progress callbacks as
  chunks arrive over the executor's results queue.

Determinism
-----------
Chunks complete in arbitrary order; the parent buffers them keyed by
(scenario, index) and reassembles the canonical serial order
scenario → size → method → index before returning. Combined with the
seeding contract, parallel output is byte-identical to serial output.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ExperimentError
from repro.feast.config import ExperimentConfig, speeds_for
from repro.feast.instrumentation import Instrumentation, PhaseTimings
from repro.feast.runner import (
    ExperimentResult,
    TrialRecord,
    distribute_for_trial,
    graph_for_trial,
    make_record,
    run_trial,
)
from repro.machine.system import System
from repro.machine.topology import make_interconnect


def default_jobs() -> int:
    """The cpu_count-aware default worker count (>= 1)."""
    return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request: ``None``/``0`` means all cores."""
    if jobs is None or jobs == 0:
        return default_jobs()
    if jobs < 0:
        raise ExperimentError(f"jobs must be >= 0, got {jobs}")
    return jobs


def is_parallelizable(config: ExperimentConfig) -> bool:
    """Whether ``config`` can cross a process boundary.

    Configs are plain data except ``graph_factory``, which may be an
    unpicklable in-process closure; those run serially instead.
    """
    if config.graph_factory is None:
        return True
    try:
        pickle.dumps(config)
    except Exception:
        return False
    return True


@dataclass(frozen=True)
class TrialSpec:
    """One worker work unit: every (size × method) trial of one graph.

    Carries only the (picklable) config plus the (scenario, index)
    coordinates; the worker regenerates the graph from its seed.
    """

    config: ExperimentConfig
    scenario: str
    index: int


@dataclass
class ChunkResult:
    """One completed :class:`TrialSpec`: records keyed for reassembly."""

    scenario: str
    index: int
    #: (n_processors, method label) → record, for canonical reordering.
    records: Dict[Tuple[int, str], TrialRecord] = field(default_factory=dict)
    timings: PhaseTimings = field(default_factory=PhaseTimings)

    @property
    def n_trials(self) -> int:
        return len(self.records)


def run_chunk(spec: TrialSpec) -> ChunkResult:
    """Execute one chunk (runs inside a worker process).

    Mirrors the serial loop's per-graph work exactly: same seeds, same
    distribution reuse, same metrics — only the loop nesting differs,
    which the parent undoes when reassembling.
    """
    config = spec.config
    inst = Instrumentation()
    chunk = ChunkResult(scenario=spec.scenario, index=spec.index,
                        timings=inst.timings)
    graph_config = config.graph_config.with_scenario(spec.scenario)
    with inst.phase("generate"):
        graph = graph_for_trial(config, graph_config, spec.scenario, spec.index)
    distributors = {method.label: method.build() for method in config.methods}
    reusable: Dict[object, object] = {}
    for n_processors in config.system_sizes:
        speeds = speeds_for(config.speed_profile, n_processors)
        system = System(
            n_processors,
            interconnect=make_interconnect(config.topology, n_processors),
            speeds=speeds,
        )
        total_capacity = float(sum(speeds))
        for method in config.methods:
            with inst.phase("distribute"):
                assignment = distribute_for_trial(
                    method,
                    distributors[method.label],
                    graph,
                    n_processors,
                    total_capacity,
                    reusable,
                    method.label,
                )
            with inst.phase("schedule"):
                metrics = run_trial(
                    graph,
                    assignment,
                    system,
                    policy_name=config.policy,
                    respect_release_times=config.respect_release_times,
                )
            chunk.records[(n_processors, method.label)] = make_record(
                config, spec.scenario, n_processors, method,
                spec.index, assignment, metrics,
            )
    return chunk


def run_parallel_experiment(
    config: ExperimentConfig,
    jobs: Optional[int] = None,
    progress=None,
    instrumentation: Optional[Instrumentation] = None,
) -> ExperimentResult:
    """Execute ``config`` over ``jobs`` worker processes.

    Prefer calling :func:`repro.feast.runner.run_experiment` with
    ``jobs=N``, which handles serial fallback; this is the engine behind
    it. Records come back in canonical serial order.
    """
    started = time.perf_counter()
    n_jobs = resolve_jobs(jobs)
    if not is_parallelizable(config):
        raise ExperimentError(
            f"experiment {config.name!r} carries an unpicklable "
            "graph_factory; run it with jobs=1"
        )
    inst = instrumentation if instrumentation is not None else Instrumentation()
    if progress is not None:
        inst.add_progress(progress)
    inst.start(config.n_trials)

    specs = [
        TrialSpec(config=config, scenario=scenario, index=index)
        for scenario in config.scenarios
        for index in range(config.n_graphs)
    ]
    chunks: Dict[Tuple[str, int], ChunkResult] = {}
    with ProcessPoolExecutor(max_workers=min(n_jobs, len(specs))) as pool:
        futures = [pool.submit(run_chunk, spec) for spec in specs]
        for future in as_completed(futures):
            chunk = future.result()
            chunks[(chunk.scenario, chunk.index)] = chunk
            inst.absorb(chunk.timings, chunk.n_trials)

    records: List[TrialRecord] = []
    for scenario in config.scenarios:
        for n_processors in config.system_sizes:
            for method in config.methods:
                for index in range(config.n_graphs):
                    records.append(
                        chunks[(scenario, index)].records[
                            (n_processors, method.label)
                        ]
                    )
    if len(records) != config.n_trials:
        raise ExperimentError(
            f"experiment {config.name!r} produced {len(records)} records "
            f"but planned {config.n_trials}"
        )
    return ExperimentResult(
        config=config,
        records=records,
        elapsed_seconds=time.perf_counter() - started,
        timings=inst.timings,
        jobs=n_jobs,
    )
