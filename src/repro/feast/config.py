"""Experiment configuration objects for the FEAST-style harness.

The paper performed "all modeling and simulation … within FEAST, a
framework for evaluation of allocation and scheduling techniques for
distributed hard real-time systems". FEAST is not public; this package
plays its role (see DESIGN.md §5).

An :class:`ExperimentConfig` describes one full experiment: the workload
generator settings, which execution-time scenarios to run, the platform
sweep (system sizes, topology), the scheduling options, and the set of
*methods* (deadline-distribution strategies) under comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Tuple

from repro.core.commcost import make_estimator
from repro.core.metrics import make_metric
from repro.core.slicer import DeadlineDistributor
from repro.errors import ExperimentError
from repro.graph.generator import SCENARIOS, RandomGraphConfig
from repro.machine.topology import TOPOLOGIES
from repro.sched.policies import POLICIES

#: The paper's system-size sweep: 2 to 16 processors.
PAPER_SYSTEM_SIZES: Tuple[int, ...] = (2, 3, 4, 6, 8, 10, 12, 14, 16)

#: The paper's trial count per parameter combination.
PAPER_N_GRAPHS = 128


def _uniform_speeds(n: int) -> Tuple[float, ...]:
    return tuple(1.0 for _ in range(n))


def _mixed_speeds(n: int) -> Tuple[float, ...]:
    return tuple(2.0 if i % 2 else 1.0 for i in range(n))


def _one_fast_speeds(n: int) -> Tuple[float, ...]:
    return tuple(4.0 if i == 0 else 1.0 for i in range(n))


#: Named processor-speed profiles (Section 8's heterogeneity axis).
SPEED_PROFILES = {
    "uniform": _uniform_speeds,
    "mixed": _mixed_speeds,
    "one-fast": _one_fast_speeds,
}


def speeds_for(profile: str, n_processors: int) -> Tuple[float, ...]:
    """Processor speeds of a named profile on an ``n``-processor platform."""
    try:
        builder = SPEED_PROFILES[profile]
    except KeyError:
        raise ExperimentError(
            f"unknown speed profile {profile!r}; expected one of "
            f"{sorted(SPEED_PROFILES)}"
        ) from None
    return builder(n_processors)


@dataclass(frozen=True)
class MethodSpec:
    """One deadline-distribution strategy under evaluation.

    ``label`` names the series in tables; ``metric`` and ``comm`` select
    the laxity-ratio metric and communication-cost estimation strategy;
    the remaining fields parameterize THRES/ADAPT.
    """

    label: str
    metric: str
    comm: str = "CCNE"
    surplus: Optional[float] = None
    threshold_factor: Optional[float] = None
    cost_per_item: float = 1.0
    #: When set, the method is a related-work baseline (``UD``, ``ED``,
    #: ``EQS``, ``EQF``, ``DIV``) instead of a slicing metric; ``metric``
    #: and ``comm`` are then ignored.
    baseline: Optional[str] = None
    #: ADAPT only: use the capacity-aware variant (divisor = speed sum).
    capacity_aware: bool = False
    #: Slicing only: clamp windows to pending anchors (DESIGN.md §5); the
    #: False setting ablates the reproduction's clamping decision.
    clamp_to_anchors: bool = True

    def __post_init__(self) -> None:
        if self.baseline is not None:
            from repro.core.baselines import BASELINES

            if self.baseline.upper() not in BASELINES:
                raise ExperimentError(f"unknown baseline {self.baseline!r}")
            return
        if self.metric.upper() not in ("NORM", "PURE", "THRES", "ADAPT"):
            raise ExperimentError(f"unknown metric {self.metric!r}")
        if self.comm.upper() not in ("CCNE", "CCAA"):
            raise ExperimentError(f"unknown comm strategy {self.comm!r}")

    @property
    def needs_system_size(self) -> bool:
        """ADAPT's surplus depends on the processor count, so its
        distribution cannot be reused across system sizes."""
        return self.baseline is None and self.metric.upper() == "ADAPT"

    def build(self):
        """Instantiate the distributor this spec describes."""
        if self.baseline is not None:
            from repro.core.baselines import make_baseline

            return make_baseline(self.baseline)
        kwargs = {}
        metric = self.metric.upper()
        if metric in ("THRES", "ADAPT") and self.threshold_factor is not None:
            kwargs["threshold_factor"] = self.threshold_factor
        if metric == "THRES" and self.surplus is not None:
            kwargs["surplus"] = self.surplus
        if metric == "ADAPT" and self.capacity_aware:
            kwargs["capacity_aware"] = True
        return DeadlineDistributor(
            metric=make_metric(metric, **kwargs),
            estimator=make_estimator(self.comm, cost_per_item=self.cost_per_item),
            clamp_to_anchors=self.clamp_to_anchors,
        )


@dataclass(frozen=True)
class ExperimentConfig:
    """One complete experiment: workload × platform sweep × methods."""

    name: str
    description: str
    methods: Tuple[MethodSpec, ...]
    graph_config: RandomGraphConfig = RandomGraphConfig()
    scenarios: Tuple[str, ...] = ("LDET", "MDET", "HDET")
    n_graphs: int = PAPER_N_GRAPHS
    #: Experiment seed. Graph ``i`` of a scenario is generated from
    #: ``repro.feast.runner.trial_seed(seed, scenario, i)``, which folds a
    #: stable hash of the scenario name into this value — the pairing
    #: contract every method, size, and worker process relies on.
    seed: int = 2026
    system_sizes: Tuple[int, ...] = PAPER_SYSTEM_SIZES
    topology: str = "bus"
    policy: str = "EDF"
    respect_release_times: bool = False
    #: Processor-speed profile: ``"uniform"`` (all 1.0, the paper's
    #: homogeneous platform), ``"mixed"`` (alternating 1.0 / 2.0) or
    #: ``"one-fast"`` (one 4.0 processor, rest 1.0). Section 8 names the
    #: heterogeneous extension; these profiles realize it.
    speed_profile: str = "uniform"
    #: Optional custom workload source: ``factory(graph_config, rng)`` must
    #: return a validated TaskGraph. ``None`` uses the random generator.
    #: Used by the structured-graph and locality experiments.
    graph_factory: Optional[Callable] = None
    #: Per-trial wall-clock budget in seconds (``None`` = unlimited).
    #: Enforced cooperatively inside workers (see :mod:`repro.budget`)
    #: and, for hard hangs, by the parent killing overdue chunks.
    trial_timeout: Optional[float] = None
    #: Times a failed trial chunk is retried before quarantine (a chunk
    #: therefore gets at most ``max_retries + 1`` attempts).
    max_retries: int = 2
    #: Route the distribute phase through the vectorized batch kernel
    #: (:mod:`repro.core.batch`): a scenario's (method, size, graph)
    #: distributions are packed and evaluated together, with unsupported
    #: configurations falling back to the scalar path per request.
    #: Batch results are bit-identical to scalar ones, so this is an
    #: execution knob like ``trial_timeout`` — deliberately excluded
    #: from the persistence identity (see ``_config_identity``).
    batch: bool = False

    def __post_init__(self) -> None:
        if not self.methods:
            raise ExperimentError(
                f"experiment {self.name!r}: methods must be a non-empty "
                "tuple of MethodSpec, got ()"
            )
        labels = [m.label for m in self.methods]
        if len(set(labels)) != len(labels):
            raise ExperimentError(
                f"experiment {self.name!r} has duplicate method labels: {labels}"
            )
        for scenario in self.scenarios:
            if scenario not in SCENARIOS:
                raise ExperimentError(
                    f"unknown scenario {scenario!r}; expected one of "
                    f"{sorted(SCENARIOS)}"
                )
        if self.n_graphs < 1:
            raise ExperimentError(
                f"n_graphs must be >= 1, got {self.n_graphs}"
            )
        if not self.system_sizes:
            raise ExperimentError("system_sizes must be a non-empty tuple")
        if min(self.system_sizes) < 1:
            raise ExperimentError(
                f"system_sizes must all be >= 1, got {self.system_sizes}"
            )
        if self.topology not in TOPOLOGIES:
            raise ExperimentError(
                f"unknown topology {self.topology!r}; expected one of "
                f"{sorted(TOPOLOGIES)}"
            )
        if self.policy.upper() not in POLICIES:
            raise ExperimentError(
                f"unknown policy {self.policy!r}; expected one of "
                f"{sorted(POLICIES)}"
            )
        if self.speed_profile not in SPEED_PROFILES:
            raise ExperimentError(
                f"unknown speed profile {self.speed_profile!r}; expected "
                f"one of {sorted(SPEED_PROFILES)}"
            )
        if self.trial_timeout is not None and not self.trial_timeout > 0:
            raise ExperimentError(
                f"trial_timeout must be positive when set, got "
                f"{self.trial_timeout}"
            )
        if self.max_retries < 0:
            raise ExperimentError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    def scaled(self, n_graphs: int) -> "ExperimentConfig":
        """Copy with a different trial count (for quick runs / benches)."""
        return replace(self, n_graphs=n_graphs)

    @property
    def trials_per_graph(self) -> int:
        """Scheduling runs each generated graph participates in — the
        size of one parallel work chunk (see :mod:`repro.feast.parallel`)."""
        return len(self.system_sizes) * len(self.methods)

    def chunk_keys(self) -> Tuple[Tuple[str, int], ...]:
        """The canonical (scenario, graph-index) chunk coordinates.

        This ordering *is* the work-unit contract every execution
        backend shares (:mod:`repro.feast.backends`): chunks are
        enumerated scenario-major, index-minor, so a chunk's ordinal in
        this tuple is stable across processes and hosts. Shard backends
        partition work by that ordinal, and the streaming merge
        reassembles records in exactly this order — which is why any
        backend, at any shard count, reproduces the serial records
        byte for byte.
        """
        return tuple(
            (scenario, index)
            for scenario in self.scenarios
            for index in range(self.n_graphs)
        )

    @property
    def n_trials(self) -> int:
        """Total scheduling runs this experiment performs.

        The runner guarantees exactly this many records (it validates
        workload sources against it), so ``progress(done, total)`` can
        never report more than 100 %.
        """
        return len(self.scenarios) * self.n_graphs * self.trials_per_graph
