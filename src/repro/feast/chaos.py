"""Deterministic chaos campaigns against the execution backends.

A chaos campaign is the backend layer's end-to-end robustness proof:
run a small schedulability sweep twice — once clean and serial, once on
the backend under test while a seeded :class:`~.faultinject.FaultPlan`
hangs, crashes, corrupts, and kills its workers — and assert the two
runs produce **byte-identical** records. Determinism makes the
assertion exact (no tolerances): every re-execution of a chunk, on any
worker, after any fault, must reproduce the same bytes, so any
divergence is an engine bug, not noise.

The campaign also asserts that the interesting recovery machinery
actually *ran*: expectations derived from the plan (a ``hang`` spec ⇒
stall detection fired; an always-on ``exit`` spec ⇒ a shard failed
over; …) are checked against the run's
:class:`~.backends.base.SupervisionStats`, so a refactor that silently
stops exercising a path fails the campaign even if the records stay
correct.

Plans are backend-aware. Worker-killing kinds need worker processes:
the ``subprocess`` backend gets the full menu (stall → escalation,
journal truncation, failover-forcing exits); the ``pool`` backend gets
crashes and in-worker faults; ``serial`` gets only in-process kinds
(``error``/``slow-io``/``spin``). Everything is derived from the seed —
the same ``(seed, backend, shards)`` triple always injects the same
faults at the same chunks.

CLI: ``repro chaos --seed N --backend subprocess --faults K [--out DIR]``
(see :func:`repro.cli.cmd_chaos`); CI runs one campaign per backend.
"""

from __future__ import annotations

import json
import os
import random
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ExperimentError, ExperimentWarning
from repro.feast import faultinject
from repro.feast.backends.base import SupervisionStats
from repro.feast.backends.work import RetryPolicy
from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.faultinject import FaultPlan, FaultSpec
from repro.feast.instrumentation import Instrumentation
from repro.graph.generator import RandomGraphConfig
from repro.obs import runtime as obs

#: In-process-safe fault kinds, usable on every backend.
_SOFT_KINDS = ("error", "slow-io", "spin")


def chaos_config(
    seed: int,
    scenarios: Tuple[str, ...] = ("MDET", "LDET"),
    n_graphs: int = 6,
) -> ExperimentConfig:
    """The small, fast sweep a chaos campaign runs twice.

    Sized so that every shard of a 3-shard fleet owns several chunks
    (12 chunks by default) while a full campaign — clean reference plus
    chaotic run — stays CI-fast.
    """
    return ExperimentConfig(
        name="chaos",
        description="chaos-campaign sweep (clean vs faulted identity)",
        methods=(
            MethodSpec(label="PURE", metric="PURE"),
            MethodSpec(label="ADAPT", metric="ADAPT"),
        ),
        graph_config=RandomGraphConfig(
            n_subtasks_range=(10, 14), depth_range=(3, 5)
        ),
        scenarios=scenarios,
        n_graphs=n_graphs,
        system_sizes=(2, 4),
        seed=seed,
    )


def chaos_policy(backend: str) -> RetryPolicy:
    """The retry/supervision policy a campaign runs under.

    Subprocess campaigns enable stall detection (2 s of journal silence
    ⇒ SIGTERM, 1 s grace ⇒ SIGKILL) and enough launch attempts to climb
    the whole recovery ladder: stall-kill, truncation repair, and still
    one spare.
    """
    return RetryPolicy(
        max_attempts=4,
        backoff_base=0.05,
        backoff_factor=2.0,
        backoff_max=0.25,
        stall_timeout=2.0 if backend == "subprocess" else None,
        stall_grace=1.0,
    )


def build_fault_plan(
    seed: int,
    config: ExperimentConfig,
    backend: str,
    shards: int,
    extra_faults: int = 3,
) -> FaultPlan:
    """The seeded fault schedule for one campaign.

    For the ``subprocess`` backend the plan *guarantees* the coverage
    the acceptance campaign requires, pinned to chunk ordinals so the
    victims span at least two shards:

    * a fire-once ``hang`` on shard 0's first chunk — no journal
      progress, so the supervisor must stall-detect and SIGTERM it;
    * a fire-once ``truncate-journal`` on shard 0's third chunk — by
      then two chunks are journaled, so the truncation tears a real
      record that the relaunch must repair and replay around;
    * an every-attempt ``exit`` on shard 1's second chunk — the shard
      dies mid-sweep on every launch, exhausts its cap, and must fail
      over its remaining chunks to the survivors (the parent's terminal
      sweep absorbs the poisoned chunk itself, where the fault is
      inert by the parent-pid guard).

    The ``pool`` backend gets a fire-once ``crash`` instead (pool
    respawn supervision), and every backend gets ``extra_faults``
    additional seeded in-process faults (``error``/``slow-io``/``spin``)
    on coordinates drawn from ``random.Random(seed)``.
    """
    keys = list(config.chunk_keys())
    faults: List[FaultSpec] = []
    taken = set()

    def pin(ordinal: int, **kwargs: Any) -> None:
        scenario, index = keys[ordinal % len(keys)]
        faults.append(FaultSpec(scenario=scenario, index=index, **kwargs))
        taken.add((scenario, index))

    if backend == "subprocess":
        if shards < 2:
            raise ExperimentError(
                f"a subprocess chaos campaign needs >= 2 shards, got {shards}"
            )
        pin(0, kind="hang", once=True, seconds=30.0,
            message="chaos: wedge shard 0")
        pin(2 * shards, kind="truncate-journal", once=True, amount=25,
            message="chaos: tear shard 0's journal")
        pin(1 + shards, kind="exit", attempts=None,
            message="chaos: poison shard 1")
    elif backend == "pool":
        pin(0, kind="crash", attempts=(0,), message="chaos: crash a worker")
    rng = random.Random(seed)
    open_keys = [k for k in keys if k not in taken]
    rng.shuffle(open_keys)
    for scenario, index in open_keys[:max(0, extra_faults)]:
        kind = rng.choice(_SOFT_KINDS)
        faults.append(FaultSpec(
            scenario=scenario,
            index=index,
            kind=kind,
            attempts=(0,),
            seconds=0.05,
            message=f"chaos: seeded {kind}",
        ))
    return FaultPlan(faults=tuple(faults))


@dataclass
class Expectation:
    """One supervision counter the plan predicts must have fired."""

    counter: str
    at_least: int
    actual: int = 0

    @property
    def met(self) -> bool:
        return self.actual >= self.at_least

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counter": self.counter,
            "at_least": self.at_least,
            "actual": self.actual,
            "met": self.met,
        }


def plan_expectations(plan: FaultPlan, backend: str) -> List[Expectation]:
    """The supervision outcomes ``plan`` must provoke on ``backend``."""
    if backend != "subprocess":
        return []
    kinds = [spec.kind for spec in plan.faults]
    expectations: List[Expectation] = []
    if "hang" in kinds or "stubborn-hang" in kinds:
        expectations.append(Expectation("stalls_detected", 1))
    if "stubborn-hang" in kinds:
        expectations.append(Expectation("kills_escalated", 1))
    lethal = any(
        spec.kind in ("exit", "crash") and spec.attempts is None
        for spec in plan.faults
    )
    if lethal:
        expectations.append(Expectation("shards_failed_over", 1))
        expectations.append(Expectation("chunks_reassigned", 1))
    if any(k in kinds for k in ("hang", "truncate-journal", "exit", "crash")):
        expectations.append(Expectation("relaunches", 1))
    if "truncate-journal" in kinds or lethal:
        expectations.append(Expectation("chunks_replayed", 1))
    return expectations


@dataclass
class ChaosReport:
    """The verdict of one campaign: identity + exercised machinery."""

    backend: str
    seed: int
    shards: int
    n_faults: int
    n_records: int
    identical: bool
    quarantined: List[Tuple[str, int]]
    supervision: SupervisionStats
    expectations: List[Expectation] = field(default_factory=list)
    warnings_observed: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.identical
            and not self.quarantined
            and all(e.met for e in self.expectations)
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "seed": self.seed,
            "shards": self.shards,
            "n_faults": self.n_faults,
            "n_records": self.n_records,
            "identical": self.identical,
            "quarantined": [list(k) for k in self.quarantined],
            "supervision": self.supervision.as_dict(),
            "expectations": [e.as_dict() for e in self.expectations],
            "warnings_observed": self.warnings_observed,
            "ok": self.ok,
        }


def run_chaos(
    seed: int,
    backend: str = "subprocess",
    shards: int = 3,
    extra_faults: int = 3,
    out: Optional[str] = None,
    config: Optional[ExperimentConfig] = None,
    plan: Optional[FaultPlan] = None,
    policy: Optional[RetryPolicy] = None,
) -> ChaosReport:
    """Run one chaos campaign and return its report.

    Clean serial reference first, then the same sweep on ``backend``
    under the seeded fault plan; the two record lists must be
    byte-identical (compared as dicts) and the plan's expectations must
    hold on the run's supervision stats. ``out`` (a directory) persists
    the artifacts: the fault schedule, the campaign report, the chaotic
    run's telemetry event log, and its checkpoint journals.
    """
    from repro.feast.runner import run_experiment
    from repro.feast.sweep import write_run_events

    config = config if config is not None else chaos_config(seed)
    plan = plan if plan is not None else build_fault_plan(
        seed, config, backend, shards, extra_faults
    )
    policy = policy if policy is not None else chaos_policy(backend)

    reference = run_experiment(config, jobs=1)
    expected = [r.as_dict() for r in reference.records]

    checkpoint = None
    if out is not None:
        os.makedirs(out, exist_ok=True)
        with open(os.path.join(out, "fault-plan.json"), "w") as fp:
            fp.write(plan.to_json() + "\n")
        if backend == "subprocess":
            checkpoint = os.path.join(out, "journals")

    inst = Instrumentation(telemetry=obs.Telemetry())
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", ExperimentWarning)
        with faultinject.active(plan):
            result = run_experiment(
                config,
                backend=backend,
                shards=shards,
                retry=policy,
                checkpoint=checkpoint,
                instrumentation=inst,
            )

    actual = [r.as_dict() for r in result.records]
    supervision = (
        result.supervision if result.supervision is not None
        else SupervisionStats()
    )
    expectations = plan_expectations(plan, backend)
    counters = supervision.as_dict()
    for expectation in expectations:
        expectation.actual = counters.get(expectation.counter, 0)

    report = ChaosReport(
        backend=backend,
        seed=seed,
        shards=shards,
        n_faults=len(plan.faults),
        n_records=len(actual),
        identical=actual == expected,
        quarantined=list(result.quarantined),
        supervision=supervision,
        expectations=expectations,
        warnings_observed=[
            str(w.message) for w in caught
            if issubclass(w.category, ExperimentWarning)
        ],
    )
    if out is not None:
        write_run_events(
            os.path.join(out, "chaos.events.jsonl"), result, inst
        )
        with open(os.path.join(out, "report.json"), "w") as fp:
            json.dump(report.as_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")
    return report


def render_chaos_report(report: ChaosReport) -> str:
    """Human-readable campaign verdict for the CLI."""
    lines = [
        f"chaos campaign: backend={report.backend} seed={report.seed} "
        f"shards={report.shards} faults={report.n_faults}",
        f"  records: {report.n_records} "
        f"({'byte-identical to clean serial' if report.identical else 'DIVERGED from clean serial'})",
    ]
    if report.quarantined:
        lines.append(
            f"  quarantined: {len(report.quarantined)} chunk(s) "
            f"{report.quarantined} (chaos faults must never quarantine)"
        )
    stats = report.supervision.as_dict()
    if any(stats.values()):
        lines.append("  supervision: " + "  ".join(
            f"{name}={value}" for name, value in stats.items() if value
        ))
    for expectation in report.expectations:
        mark = "ok" if expectation.met else "UNMET"
        lines.append(
            f"  expect {expectation.counter} >= {expectation.at_least}: "
            f"{expectation.actual} [{mark}]"
        )
    lines.append(f"  verdict: {'PASS' if report.ok else 'FAIL'}")
    return "\n".join(lines)
