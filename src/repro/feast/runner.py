"""Experiment execution: generate → distribute → schedule → measure.

:func:`run_experiment` executes an :class:`~repro.feast.config.ExperimentConfig`
and returns an :class:`ExperimentResult` holding one :class:`TrialRecord`
per (scenario, system size, method, graph). Graph generation is seeded per
(scenario, index), so every method and system size sees the *same* graphs —
the paired design behind the paper's per-panel comparisons.

Deadline distributions that do not depend on the system size (everything
except ADAPT) are computed once per (method, scenario, graph) and reused
across the size sweep.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.annotations import DeadlineAssignment
from repro.feast.config import ExperimentConfig, MethodSpec, speeds_for
from repro.graph.generator import generate_task_graphs
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.machine.topology import make_interconnect
from repro.sched.analysis import ScheduleMetrics, schedule_metrics
from repro.sched.list_scheduler import ListScheduler
from repro.sched.policies import make_policy


@dataclass(frozen=True)
class TrialRecord:
    """Measurements of one (scenario, size, method, graph) trial."""

    experiment: str
    scenario: str
    n_processors: int
    method: str
    graph_index: int
    max_lateness: float
    mean_lateness: float
    n_late: int
    makespan: float
    mean_utilization: float
    min_laxity: float
    #: Against the application's end-to-end anchors (strategy-independent).
    max_end_to_end_lateness: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "scenario": self.scenario,
            "n_processors": self.n_processors,
            "method": self.method,
            "graph_index": self.graph_index,
            "max_lateness": self.max_lateness,
            "mean_lateness": self.mean_lateness,
            "n_late": self.n_late,
            "makespan": self.makespan,
            "mean_utilization": self.mean_utilization,
            "min_laxity": self.min_laxity,
            "max_end_to_end_lateness": self.max_end_to_end_lateness,
        }


@dataclass
class ExperimentResult:
    """All trial records of one experiment run, plus bookkeeping."""

    config: ExperimentConfig
    records: List[TrialRecord] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def filter(
        self,
        scenario: Optional[str] = None,
        method: Optional[str] = None,
        n_processors: Optional[int] = None,
    ) -> List[TrialRecord]:
        """Records matching all the given criteria."""
        out = self.records
        if scenario is not None:
            out = [r for r in out if r.scenario == scenario]
        if method is not None:
            out = [r for r in out if r.method == method]
        if n_processors is not None:
            out = [r for r in out if r.n_processors == n_processors]
        return list(out)

    def __len__(self) -> int:
        return len(self.records)


#: Optional progress hook: called with (done_trials, total_trials).
ProgressFn = Callable[[int, int], None]


def run_trial(
    graph: TaskGraph,
    assignment: DeadlineAssignment,
    system: System,
    policy_name: str = "EDF",
    respect_release_times: bool = False,
) -> ScheduleMetrics:
    """Schedule one annotated graph and return its metrics."""
    scheduler = ListScheduler(
        system,
        policy=make_policy(policy_name),
        respect_release_times=respect_release_times,
    )
    schedule = scheduler.schedule(graph, assignment)
    return schedule_metrics(schedule, assignment)


def run_experiment(
    config: ExperimentConfig,
    progress: Optional[ProgressFn] = None,
) -> ExperimentResult:
    """Execute every trial of ``config``."""
    started = time.perf_counter()
    result = ExperimentResult(config=config)
    total = config.n_trials
    done = 0

    for scenario in config.scenarios:
        graph_config = config.graph_config.with_scenario(scenario)
        if config.graph_factory is not None:
            graphs = [
                config.graph_factory(
                    graph_config, random.Random(config.seed * 1_000_003 + i)
                )
                for i in range(config.n_graphs)
            ]
        else:
            graphs = generate_task_graphs(
                config.n_graphs, graph_config, seed=config.seed
            )
        # Distributions reusable across the size sweep (non-ADAPT methods).
        reusable: Dict[Tuple[str, int], DeadlineAssignment] = {}
        for n_processors in config.system_sizes:
            speeds = speeds_for(config.speed_profile, n_processors)
            system = System(
                n_processors,
                interconnect=make_interconnect(config.topology, n_processors),
                speeds=speeds,
            )
            total_capacity = float(sum(speeds))
            for method in config.methods:
                distributor = method.build()
                for index, graph in enumerate(graphs):
                    key = (method.label, index)
                    if method.needs_system_size:
                        assignment = distributor.distribute(
                            graph,
                            n_processors=n_processors,
                            total_capacity=total_capacity,
                        )
                    else:
                        assignment = reusable.get(key)
                        if assignment is None:
                            assignment = distributor.distribute(
                                graph,
                                n_processors=n_processors,
                                total_capacity=total_capacity,
                            )
                            reusable[key] = assignment
                    metrics = run_trial(
                        graph,
                        assignment,
                        system,
                        policy_name=config.policy,
                        respect_release_times=config.respect_release_times,
                    )
                    result.records.append(
                        TrialRecord(
                            experiment=config.name,
                            scenario=scenario,
                            n_processors=n_processors,
                            method=method.label,
                            graph_index=index,
                            max_lateness=metrics.max_lateness,
                            mean_lateness=metrics.mean_lateness,
                            n_late=metrics.n_late,
                            makespan=metrics.makespan,
                            mean_utilization=metrics.mean_utilization,
                            min_laxity=assignment.min_laxity(),
                            max_end_to_end_lateness=(
                                metrics.max_end_to_end_lateness
                            ),
                        )
                    )
                    done += 1
                    if progress is not None:
                        progress(done, total)

    result.elapsed_seconds = time.perf_counter() - started
    return result
