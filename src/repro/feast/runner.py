"""Experiment execution: generate → distribute → schedule → measure.

:func:`run_experiment` executes an :class:`~repro.feast.config.ExperimentConfig`
and returns an :class:`ExperimentResult` holding one :class:`TrialRecord`
per (scenario, system size, method, graph). ``jobs > 1`` fans the trials
out over worker processes (:mod:`repro.feast.parallel`) and produces
records identical to a serial run.

Seeding / pairing contract
--------------------------
Graph ``index`` of scenario ``scenario`` is always generated from
``random.Random(trial_seed(config.seed, scenario, index))``, where the
seed folds a stable (process-independent) hash of the scenario name into
the experiment seed. Consequences, relied on throughout the harness:

* every method and every system size sees the *same* graphs — the paired
  design behind the paper's per-panel comparisons and the harness's
  paired statistics;
* different scenarios draw *independent* workloads (they differ in
  structure, not only in execution times);
* a worker process can regenerate any (scenario, index) graph locally
  from its seed — nothing large crosses the process boundary — and the
  regenerated graph is identical to the serial one;
* custom ``graph_factory`` callables receive exactly the same seeded rng
  stream as the built-in generator would for that (scenario, index).

Deadline distributions that do not depend on the system size (everything
except ADAPT) are computed once per (method, scenario, graph) — with *no*
platform arguments, so the cache cannot capture one sweep size's platform
— and re-stamped with the current platform when reused across the size
sweep.
"""

from __future__ import annotations

import hashlib
import random
import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover — annotation-only import
    from repro.feast.backends.base import SupervisionStats

from repro.core.annotations import DeadlineAssignment
from repro.errors import (
    ExperimentError,
    ExperimentWarning,
    QuarantinedTrialError,
)
from repro.feast.config import ExperimentConfig, MethodSpec, speeds_for
from repro.feast.instrumentation import (
    Instrumentation,
    PhaseTimings,
    ProgressFn,
    TrialFailure,
)
from repro.graph.generator import RandomGraphConfig, generate_task_graph
from repro.graph.taskgraph import TaskGraph
from repro.machine.system import System
from repro.sched.analysis import ScheduleMetrics, schedule_metrics
from repro.sched.list_scheduler import ListScheduler
from repro.sched.policies import make_policy

#: Seed-spreading multiplier (same prime the graph generator uses).
SEED_STRIDE = 1_000_003


def scenario_seed(seed: int, scenario: str) -> int:
    """Base seed of one scenario's graph batch.

    Folds a stable hash of the scenario name (blake2b, so identical in
    every process and on every platform — unlike builtin ``hash``) into
    the experiment seed, giving each scenario an independent workload.
    """
    digest = hashlib.blake2b(
        scenario.encode("utf-8"), digest_size=4
    ).digest()
    return seed * SEED_STRIDE + int.from_bytes(digest, "big")


def trial_seed(seed: int, scenario: str, index: int) -> int:
    """The rng seed generating graph ``index`` of ``scenario``.

    This is the whole pairing contract: any process, at any time, passing
    the same ``(seed, scenario, index)`` regenerates the same graph.
    """
    return scenario_seed(seed, scenario) * SEED_STRIDE + index


def graph_for_trial(
    config: ExperimentConfig,
    graph_config: RandomGraphConfig,
    scenario: str,
    index: int,
) -> TaskGraph:
    """Materialize graph ``index`` of ``scenario`` per the seeding contract.

    ``graph_config`` must already carry the scenario's execution-time
    deviation (``config.graph_config.with_scenario(scenario)``). Raises
    :class:`ExperimentError` when a custom factory returns anything but a
    single :class:`TaskGraph` — one call produces exactly one graph, so
    the record count always matches ``config.n_trials`` and progress can
    never exceed 100 %.

    A factory with a truthy ``needs_trial_coords`` attribute is called
    as ``factory(graph_config, rng, scenario=..., index=...)`` — the
    protocol for workloads that *select* a fixed graph per trial rather
    than generating one from the RNG.
    """
    rng = random.Random(trial_seed(config.seed, scenario, index))
    if config.graph_factory is not None:
        if getattr(config.graph_factory, "needs_trial_coords", False):
            # Index-aware factories (e.g. explicit workloads submitted
            # to repro.serve) select the graph by trial coordinates
            # instead of consuming the RNG.
            graph = config.graph_factory(
                graph_config, rng, scenario=scenario, index=index
            )
        else:
            graph = config.graph_factory(graph_config, rng)
        if not isinstance(graph, TaskGraph):
            raise ExperimentError(
                f"graph_factory must return one TaskGraph per call, got "
                f"{type(graph).__name__!r} for scenario {scenario!r} "
                f"index {index}"
            )
        return graph
    return generate_task_graph(
        graph_config,
        rng=rng,
        name=f"random-{scenario_seed(config.seed, scenario)}-{index}",
    )


@dataclass(frozen=True)
class TrialRecord:
    """Measurements of one (scenario, size, method, graph) trial."""

    experiment: str
    scenario: str
    n_processors: int
    method: str
    graph_index: int
    max_lateness: float
    mean_lateness: float
    n_late: int
    makespan: float
    mean_utilization: float
    min_laxity: float
    #: Against the application's end-to-end anchors (strategy-independent).
    max_end_to_end_lateness: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "scenario": self.scenario,
            "n_processors": self.n_processors,
            "method": self.method,
            "graph_index": self.graph_index,
            "max_lateness": self.max_lateness,
            "mean_lateness": self.mean_lateness,
            "n_late": self.n_late,
            "makespan": self.makespan,
            "mean_utilization": self.mean_utilization,
            "min_laxity": self.min_laxity,
            "max_end_to_end_lateness": self.max_end_to_end_lateness,
        }


@dataclass
class ExperimentResult:
    """All trial records of one experiment run, plus bookkeeping."""

    config: ExperimentConfig
    records: List[TrialRecord] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: Per-phase wall-clock totals (summed across workers when parallel).
    timings: Optional[PhaseTimings] = None
    #: Worker processes the run used (1 = serial).
    jobs: int = 1
    #: Every fault event the run survived (crashes, timeouts, exceptions,
    #: slow trials, quarantines), in observation order. Empty on a clean
    #: run.
    failures: List[TrialFailure] = field(default_factory=list)
    #: (scenario, graph index) chunks that exhausted their retry budget;
    #: their trials are *missing* from ``records``. Empty on a clean run.
    quarantined: List[Tuple[str, int]] = field(default_factory=list)
    #: Why the run executed on fewer workers than requested (unpicklable
    #: config, repeated pool deaths, failing shards); ``None`` when
    #: nothing degraded.
    fallback_reason: Optional[str] = None
    #: Trials whose records were streamed into a ``record_sink`` instead
    #: of being kept on ``records`` (0 for non-streaming runs).
    streamed_trials: int = 0
    #: Liveness/failover accounting from the execution backend
    #: (:class:`repro.feast.backends.SupervisionStats`): stalls detected,
    #: kill escalations, relaunches, failovers, reassigned and replayed
    #: chunks. ``None`` on the classic unsupervised serial path.
    supervision: Optional["SupervisionStats"] = None

    @property
    def complete(self) -> bool:
        """Whether every planned trial produced a record."""
        return not self.quarantined

    def check(self) -> "ExperimentResult":
        """Return ``self``, or raise if any trials were quarantined.

        For callers that prefer the old fail-fast behavior over a
        partial result.
        """
        if self.quarantined:
            chunks = ", ".join(
                f"({scenario}, {index})"
                for scenario, index in self.quarantined
            )
            raise QuarantinedTrialError(
                f"experiment {self.config.name!r} quarantined "
                f"{len(self.quarantined)} chunk(s): {chunks}"
            )
        return self

    def filter(
        self,
        scenario: Optional[str] = None,
        method: Optional[str] = None,
        n_processors: Optional[int] = None,
    ) -> List[TrialRecord]:
        """Records matching all the given criteria."""
        out = self.records
        if scenario is not None:
            out = [r for r in out if r.scenario == scenario]
        if method is not None:
            out = [r for r in out if r.method == method]
        if n_processors is not None:
            out = [r for r in out if r.n_processors == n_processors]
        return list(out)

    def __len__(self) -> int:
        return len(self.records)


def run_trial(
    graph: TaskGraph,
    assignment: DeadlineAssignment,
    system: System,
    policy_name: str = "EDF",
    respect_release_times: bool = False,
) -> ScheduleMetrics:
    """Schedule one annotated graph and return its metrics."""
    scheduler = ListScheduler(
        system,
        policy=make_policy(policy_name),
        respect_release_times=respect_release_times,
    )
    schedule = scheduler.schedule(graph, assignment)
    return schedule_metrics(schedule, assignment)


def distribute_for_trial(
    method: MethodSpec,
    distributor,
    graph: TaskGraph,
    n_processors: int,
    total_capacity: float,
    cache: Dict[object, DeadlineAssignment],
    cache_key: object,
    prefetched: Optional[Dict[object, DeadlineAssignment]] = None,
) -> DeadlineAssignment:
    """The deadline assignment of ``method`` on ``graph`` at one size.

    Size-dependent methods (ADAPT) are computed fresh for every platform,
    unless ``prefetched`` (the batch engine's per-scenario prefetch, see
    :func:`prefetch_distributions`) already holds the result under
    ``(cache_key, n_processors)``.
    Size-independent methods are computed once *without* platform
    arguments and cached under ``cache_key``; reuses re-stamp the cached
    windows with the current platform, so the recorded
    ``DeadlineAssignment.n_processors`` always matches the trial's system
    (previously the cache froze the first sweep size's platform into
    every later size's metadata).

    Two reuse layers compose here: this cache skips whole *distributions*
    per (graph, method) across the size sweep, while below it the graph's
    :class:`~repro.graph.indexed.GraphIndex` shares one compiled structure
    and one :class:`~repro.core.expanded.ExpandedGraph` per estimator
    across *all* methods of the trial (so the size-dependent recomputes
    ADAPT forces still skip re-expanding the graph).
    """
    if method.needs_system_size:
        if prefetched is not None:
            assignment = prefetched.get((cache_key, n_processors))
            if assignment is not None:
                return assignment
        return distributor.distribute(
            graph,
            n_processors=n_processors,
            total_capacity=total_capacity,
        )
    assignment = cache.get(cache_key)
    if assignment is None:
        assignment = distributor.distribute(graph)
        cache[cache_key] = assignment
    return replace(assignment, n_processors=n_processors)


def prefetch_distributions(
    config: ExperimentConfig,
    graphs: List[TaskGraph],
    reusable: Dict[object, DeadlineAssignment],
    indices: Optional[List[int]] = None,
) -> Dict[object, DeadlineAssignment]:
    """Batch-evaluate one scenario's distributions (the ``--batch`` path).

    Packs every (method, graph) — and, for size-dependent methods, every
    (method, size, graph) — distribution the trial loop is about to need
    into one :func:`repro.core.batch.distribute_many` call, which routes
    kernel-supported requests through the vectorized batch kernel and
    everything else through the scalar path. Because the kernel is
    bit-identical to the scalar pipeline, the trial loop then produces
    exactly the records it would have computed lazily.

    Size-independent methods are requested with *no* platform arguments
    (mirroring the lazy path) and their results seed ``reusable``, so
    :func:`distribute_for_trial` finds them under ``(label, index)`` and
    re-stamps per size as usual. Size-dependent methods (ADAPT) get one
    request per system size; those results are returned keyed
    ``((label, index), n_processors)`` for the ``prefetched`` lookup.

    ``indices`` supplies the graphs' trial indices (default
    ``0..len(graphs)-1``); the parallel engine passes the single chunk
    index so worker cache keys line up with the serial ones.
    """
    from repro.core.batch import DistributeRequest, distribute_many

    if indices is None:
        indices = list(range(len(graphs)))
    requests: List[DistributeRequest] = []
    targets: List[Tuple[Dict[object, DeadlineAssignment], object]] = []
    prefetched: Dict[object, DeadlineAssignment] = {}
    for method in config.methods:
        distributor = method.build()
        if method.needs_system_size:
            for n_processors in config.system_sizes:
                speeds = speeds_for(config.speed_profile, n_processors)
                total_capacity = float(sum(speeds))
                for index, graph in zip(indices, graphs):
                    requests.append(DistributeRequest(
                        graph=graph,
                        distributor=distributor,
                        n_processors=n_processors,
                        total_capacity=total_capacity,
                    ))
                    targets.append(
                        (prefetched, ((method.label, index), n_processors))
                    )
        else:
            for index, graph in zip(indices, graphs):
                requests.append(
                    DistributeRequest(graph=graph, distributor=distributor)
                )
                targets.append((reusable, (method.label, index)))
    for (target, key), assignment in zip(targets, distribute_many(requests)):
        target[key] = assignment
    return prefetched


def make_record(
    config: ExperimentConfig,
    scenario: str,
    n_processors: int,
    method: MethodSpec,
    index: int,
    assignment: DeadlineAssignment,
    metrics: ScheduleMetrics,
) -> TrialRecord:
    """Package one trial's measurements (shared by serial and workers)."""
    return TrialRecord(
        experiment=config.name,
        scenario=scenario,
        n_processors=n_processors,
        method=method.label,
        graph_index=index,
        max_lateness=metrics.max_lateness,
        mean_lateness=metrics.mean_lateness,
        n_late=metrics.n_late,
        makespan=metrics.makespan,
        mean_utilization=metrics.mean_utilization,
        min_laxity=assignment.min_laxity(),
        max_end_to_end_lateness=metrics.max_end_to_end_lateness,
    )


def run_experiment(
    config: ExperimentConfig,
    progress: Optional[ProgressFn] = None,
    jobs: Optional[int] = 1,
    instrumentation: Optional[Instrumentation] = None,
    checkpoint: Optional[str] = None,
    retry=None,
    backend: Optional[str] = None,
    shards: int = 2,
    record_sink=None,
) -> ExperimentResult:
    """Execute every trial of ``config``.

    ``jobs`` selects the execution engine: ``1`` (default) runs the
    serial loop in-process; ``> 1`` fans trials out over that many worker
    processes; ``0`` or ``None`` uses all CPU cores. Parallel runs
    produce records identical to serial runs, in identical order. A
    config whose ``graph_factory`` cannot be pickled falls back to
    in-process execution regardless of ``jobs``, with an
    :class:`ExperimentWarning` and the reason recorded on
    ``result.fallback_reason``.

    ``backend`` selects an execution backend by registry name
    (:mod:`repro.feast.backends`: ``"serial"``, ``"pool"``,
    ``"subprocess"``, or anything registered) instead of deriving it
    from ``jobs``; ``shards`` sets the subprocess backend's shard
    count. Every backend produces byte-identical canonical records.

    ``checkpoint`` names a journal file (for the subprocess backend: a
    journal *directory*): completed work units are appended as they
    finish, and a rerun with the same config and path resumes where the
    previous run stopped — the resumed result is byte-identical to an
    uninterrupted run. ``retry`` overrides the
    :class:`~repro.feast.backends.RetryPolicy` derived from the config.
    Requesting any fault-tolerance feature (``checkpoint``, ``retry``,
    ``config.trial_timeout``), an explicit ``backend``, or streaming
    routes even a ``jobs=1`` run through the supervised engine; a plain
    ``jobs=1`` run keeps the classic serial loop, which raises on the
    first trial error.

    ``record_sink`` streams records (e.g. into a
    :class:`repro.feast.aggregate.StreamingAggregator`) instead of
    collecting them on the result — see
    :func:`repro.feast.parallel.run_parallel_experiment`.

    ``progress`` is a ``(done, total)`` callback; ``instrumentation``
    optionally supplies a preconfigured :class:`Instrumentation` (extra
    callbacks, shared timing accumulation). Both may be given.
    """
    from repro.feast.parallel import is_parallelizable, resolve_jobs

    inst = instrumentation if instrumentation is not None else Instrumentation()
    if progress is not None:
        inst.add_progress(progress)
    n_jobs = resolve_jobs(jobs)
    fallback_reason = None
    if n_jobs > 1 and backend is None and not is_parallelizable(config):
        fallback_reason = (
            f"experiment {config.name!r} carries an unpicklable "
            f"graph_factory; ran in-process instead of on {n_jobs} workers"
        )
        warnings.warn(fallback_reason, ExperimentWarning, stacklevel=2)
        n_jobs = 1
    supervised = (
        checkpoint is not None
        or retry is not None
        or config.trial_timeout is not None
        or backend is not None
        or record_sink is not None
    )
    if n_jobs > 1 or supervised or fallback_reason is not None:
        from repro.feast.parallel import run_parallel_experiment

        return run_parallel_experiment(
            config,
            jobs=n_jobs,
            instrumentation=inst,
            checkpoint=checkpoint,
            retry=retry,
            fallback_reason=fallback_reason,
            backend=backend,
            shards=shards,
            record_sink=record_sink,
        )
    from repro.feast.backends.serial import run_classic_serial

    return run_classic_serial(config, inst)
