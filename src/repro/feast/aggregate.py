"""Statistical aggregation of trial records.

The paper reports "the average of the maximum task lateness taken over the
128 simulation runs that were made for each parameter combination". These
helpers compute that average — and, beyond the paper, its dispersion and a
95 % confidence interval — for arbitrary groupings of trial records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.feast.runner import TrialRecord

#: Two-sided 95 % t-quantiles for small samples; falls back to 1.96 above.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 12: 2.179, 14: 2.145, 16: 2.120,
    20: 2.086, 24: 2.064, 30: 2.042, 40: 2.021, 60: 2.000, 120: 1.980,
}


def _t95(dof: int) -> float:
    if dof <= 0:
        return float("nan")
    best = 1.960
    for k in sorted(_T95):
        if dof <= k:
            return _T95[k]
        best = _T95[k]
    return 1.960 if dof > 120 else best


@dataclass(frozen=True)
class Summary:
    """Aggregate statistics of one group of samples."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci95_half_width: float

    @property
    def ci95(self) -> Tuple[float, float]:
        return (self.mean - self.ci95_half_width, self.mean + self.ci95_half_width)


def summarize(values: Sequence[float]) -> Summary:
    """Mean, sample standard deviation, extrema, and 95 % CI half-width."""
    if not values:
        raise ExperimentError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(var)
        half = _t95(n - 1) * std / math.sqrt(n)
    else:
        std = 0.0
        half = float("nan")
    return Summary(
        n=n,
        mean=mean,
        std=std,
        minimum=min(values),
        maximum=max(values),
        ci95_half_width=half,
    )


GroupKey = Tuple
KeyFn = Callable[[TrialRecord], GroupKey]


def group_records(
    records: Iterable[TrialRecord], key: KeyFn
) -> Dict[GroupKey, List[TrialRecord]]:
    """Group records by an arbitrary key function, preserving insertion order."""
    out: Dict[GroupKey, List[TrialRecord]] = {}
    for record in records:
        out.setdefault(key(record), []).append(record)
    return out


def summarize_by(
    records: Iterable[TrialRecord],
    key: KeyFn,
    value: Callable[[TrialRecord], float] = lambda r: r.max_lateness,
) -> Dict[GroupKey, Summary]:
    """Per-group :class:`Summary` of a record field (default: max lateness)."""
    return {
        k: summarize([value(r) for r in group])
        for k, group in group_records(records, key).items()
    }


def mean_max_lateness(
    records: Iterable[TrialRecord],
) -> Dict[Tuple[str, str, int], float]:
    """The paper's headline series: mean (over graphs) of the maximum task
    lateness, keyed by (scenario, method, n_processors)."""
    summaries = summarize_by(
        records, key=lambda r: (r.scenario, r.method, r.n_processors)
    )
    return {k: s.mean for k, s in summaries.items()}


def mean_end_to_end_lateness(
    records: Iterable[TrialRecord],
) -> Dict[Tuple[str, str, int], float]:
    """Mean (over graphs) of the maximum *end-to-end* lateness, keyed by
    (scenario, method, n_processors). Unlike :func:`mean_max_lateness`
    this measure shares its anchors across strategies, so it is the right
    series for comparing different deadline-distribution methods."""
    summaries = summarize_by(
        records,
        key=lambda r: (r.scenario, r.method, r.n_processors),
        value=lambda r: r.max_end_to_end_lateness,
    )
    return {k: s.mean for k, s in summaries.items()}


@dataclass(frozen=True)
class PairedComparison:
    """Paired comparison of two methods on the same graphs.

    ``mean_diff`` is mean(B − A): negative means method B achieves more
    negative (better) lateness than A. The experiment runner seeds graphs
    per (scenario, index), so records with equal ``graph_index`` are the
    *same* workload under both methods — the paired design that removes
    between-graph variance from the comparison.
    """

    method_a: str
    method_b: str
    n: int
    mean_diff: float
    ci95_half_width: float
    t_statistic: float
    p_value: float

    @property
    def significant(self) -> bool:
        """Two-sided significance at the 5 % level."""
        return self.p_value < 0.05

    @property
    def ci95(self) -> Tuple[float, float]:
        return (
            self.mean_diff - self.ci95_half_width,
            self.mean_diff + self.ci95_half_width,
        )


def paired_comparison(
    records: Iterable[TrialRecord],
    method_a: str,
    method_b: str,
    scenario: Optional[str] = None,
    n_processors: Optional[int] = None,
    value: Callable[[TrialRecord], float] = lambda r: r.max_lateness,
) -> PairedComparison:
    """Paired t-test of method B against method A on matched graphs.

    Filters to one (scenario, size) cell when given; otherwise pairs
    within every cell and pools the differences. Raises
    :class:`ExperimentError` when no pairs match.
    """
    by_key_a: Dict[Tuple, float] = {}
    by_key_b: Dict[Tuple, float] = {}
    for record in records:
        if scenario is not None and record.scenario != scenario:
            continue
        if n_processors is not None and record.n_processors != n_processors:
            continue
        key = (record.scenario, record.n_processors, record.graph_index)
        if record.method == method_a:
            by_key_a[key] = value(record)
        elif record.method == method_b:
            by_key_b[key] = value(record)
    diffs = [
        by_key_b[key] - by_key_a[key] for key in by_key_a if key in by_key_b
    ]
    if not diffs:
        raise ExperimentError(
            f"no matched pairs of {method_a!r} and {method_b!r}"
        )
    n = len(diffs)
    mean = sum(diffs) / n
    if n > 1:
        var = sum((d - mean) ** 2 for d in diffs) / (n - 1)
        std = math.sqrt(var)
    else:
        std = 0.0
    if std == 0.0:
        t_stat = 0.0 if mean == 0 else math.copysign(math.inf, mean)
        p_value = 1.0 if mean == 0 else 0.0
        half = 0.0
    else:
        se = std / math.sqrt(n)
        t_stat = mean / se
        half = _t95(n - 1) * se
        p_value = _two_sided_p(t_stat, n - 1)
    return PairedComparison(
        method_a=method_a,
        method_b=method_b,
        n=n,
        mean_diff=mean,
        ci95_half_width=half,
        t_statistic=t_stat,
        p_value=p_value,
    )


def _two_sided_p(t_stat: float, dof: int) -> float:
    """Two-sided p-value of a t statistic.

    Uses scipy when available (it is, in this repository's environment);
    falls back to the normal approximation otherwise.
    """
    try:
        from scipy import stats

        return float(2.0 * stats.t.sf(abs(t_stat), dof))
    except ImportError:  # pragma: no cover - scipy is a test dependency
        z = abs(t_stat)
        return float(2.0 * 0.5 * math.erfc(z / math.sqrt(2.0)))


# ----------------------------------------------------------------------
# Streaming aggregation (the record_sink side of the execution backends)
# ----------------------------------------------------------------------
class ExactSum:
    """Exact float accumulation via Shewchuk partials.

    Floating-point addition is not associative, but execution backends
    deliver chunks in arbitrary order — the pool by completion, shards
    by journal position. Tracking each group's sum as a list of
    non-overlapping partials makes the rounded total independent of
    the order values arrive in, which is what lets a streamed aggregate
    be *identical* across backends and shard counts instead of merely
    close. Memory is O(1) in practice (a handful of partials).
    """

    __slots__ = ("_partials",)

    def __init__(self) -> None:
        self._partials: List[float] = []

    def add(self, x: float) -> None:
        partials = self._partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    @property
    def value(self) -> float:
        """The correctly rounded sum of everything added so far."""
        return math.fsum(self._partials)


class StreamStats:
    """One group's running statistics (exact sums, O(1) memory)."""

    __slots__ = ("n", "_sum", "_sumsq", "minimum", "maximum")

    def __init__(self) -> None:
        self.n = 0
        self._sum = ExactSum()
        self._sumsq = ExactSum()
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.n += 1
        self._sum.add(value)
        self._sumsq.add(value * value)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def summary(self) -> Summary:
        """A :class:`Summary` of the streamed values.

        The variance comes from the one-pass identity
        ``(Σv² − n·mean²) / (n−1)`` over *exact* sums, so it is
        order-independent; it can differ from the two-pass
        :func:`summarize` result in the last few ulps (never more —
        the sums themselves carry no accumulated rounding error).
        """
        if self.n == 0:
            raise ExperimentError("cannot summarize an empty sample")
        n = self.n
        mean = self._sum.value / n
        if n > 1:
            var = max(0.0, (self._sumsq.value - n * mean * mean) / (n - 1))
            std = math.sqrt(var)
            half = _t95(n - 1) * std / math.sqrt(n)
        else:
            std = 0.0
            half = float("nan")
        return Summary(
            n=n,
            mean=mean,
            std=std,
            minimum=self.minimum,
            maximum=self.maximum,
            ci95_half_width=half,
        )


class StreamingAggregator:
    """Fold trial records into per-group statistics as they stream.

    The ``record_sink`` counterpart of :func:`summarize_by`: pass an
    instance as ``run_experiment(..., record_sink=agg)`` and each
    record is folded into its group's :class:`StreamStats` the moment
    its chunk completes (or replays from a checkpoint), then dropped —
    the run never materializes the record list, so a paper-scale sweep's
    resident memory is bounded by the chunk size. Aggregates are
    order-independent (see :class:`ExactSum`): serial, pool, and any
    shard count produce identical group summaries.

    ``key``/``value`` default to the paper's headline series — mean max
    lateness per (scenario, method, n_processors), i.e.
    :meth:`means` matches :func:`mean_max_lateness` of the same records.
    """

    def __init__(
        self,
        key: KeyFn = lambda r: (r.scenario, r.method, r.n_processors),
        value: Callable[[TrialRecord], float] = lambda r: r.max_lateness,
    ) -> None:
        self._key = key
        self._value = value
        self.groups: Dict[GroupKey, StreamStats] = {}
        #: Records folded so far.
        self.n_records = 0

    def __call__(self, record: TrialRecord) -> None:
        """The record-sink interface: fold one record."""
        self.n_records += 1
        stats = self.groups.get(self._key(record))
        if stats is None:
            stats = self.groups.setdefault(self._key(record), StreamStats())
        stats.add(self._value(record))

    def summaries(self) -> Dict[GroupKey, Summary]:
        """Per-group :class:`Summary`, keyed and ordered deterministically
        (sorted by group key, independent of arrival order)."""
        return {
            key: self.groups[key].summary() for key in sorted(self.groups)
        }

    def means(self) -> Dict[GroupKey, float]:
        """Per-group means — the streamed :func:`mean_max_lateness`."""
        return {key: s.mean for key, s in self.summaries().items()}


def improvement_over(
    records: Iterable[TrialRecord],
    baseline_method: str,
) -> Dict[Tuple[str, str, int], float]:
    """Relative improvement of each method's mean max lateness over a
    baseline, per (scenario, method, n_processors).

    Improvement is measured the way the paper phrases it ("the increase in
    performance over PURE can be as high as 100 %"): the *gain in margin*,
    ``(baseline - method) / |baseline|`` — positive when the method achieves
    a more negative (better) lateness than the baseline.
    """
    means = mean_max_lateness(records)
    out: Dict[Tuple[str, str, int], float] = {}
    for (scenario, method, size), value in means.items():
        base = means.get((scenario, baseline_method, size))
        if base is None or method == baseline_method or base == 0:
            continue
        out[(scenario, method, size)] = (base - value) / abs(base)
    return out
