"""ASCII line plots of experiment series.

The paper presents its results as line plots (lateness vs system size, one
curve per method). This module renders the same picture in plain text, so
``repro run <figure> --plot`` reproduces not just the figures' data but
their visual shape — crossovers and saturation are easier to see on a
curve than in a table.

No plotting dependencies: characters on a grid. Each method gets a marker;
collisions show the later-drawn marker (the legend preserves identity).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.feast.aggregate import mean_max_lateness
from repro.feast.runner import ExperimentResult

#: Markers cycled over methods.
MARKERS = "ox+*#@%&"


def render_plot(
    curves: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series on one character grid.

    The y-axis is annotated on the left, the x-axis below; a legend maps
    markers to series names.
    """
    if not curves:
        raise ExperimentError("nothing to plot")
    points = [p for series in curves.values() for p in series]
    if not points:
        raise ExperimentError("all series are empty")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if math.isclose(x_hi, x_lo):
        x_hi = x_lo + 1.0
    if math.isclose(y_hi, y_lo):
        y_hi = y_lo + 1.0
    # A little headroom so extreme points don't sit on the frame.
    pad = 0.05 * (y_hi - y_lo)
    y_lo -= pad
    y_hi += pad

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> Tuple[int, int]:
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y_hi - y) / (y_hi - y_lo) * (height - 1))
        return row, col

    for index, (name, series) in enumerate(curves.items()):
        marker = MARKERS[index % len(MARKERS)]
        ordered = sorted(series)
        # Connect consecutive points with interpolated dots.
        for (x1, y1), (x2, y2) in zip(ordered, ordered[1:]):
            steps = max(
                2, abs(cell(x2, y2)[1] - cell(x1, y1)[1]) + 1
            )
            for k in range(steps + 1):
                t = k / steps
                row, col = cell(x1 + t * (x2 - x1), y1 + t * (y2 - y1))
                if grid[row][col] == " ":
                    grid[row][col] = "."
        for x, y in ordered:
            row, col = cell(x, y)
            grid[row][col] = marker

    label_width = max(
        len(f"{y_hi:.1f}"), len(f"{y_lo:.1f}"), len(f"{(y_lo + y_hi) / 2:.1f}")
    )
    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_hi:.1f}"
        elif row_index == height - 1:
            label = f"{y_lo:.1f}"
        elif row_index == height // 2:
            label = f"{(y_lo + y_hi) / 2:.1f}"
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{x_lo:g}"
    x_axis += " " * max(1, width - len(f"{x_lo:g}") - len(f"{x_hi:g}"))
    x_axis += f"{x_hi:g}"
    lines.append(" " * label_width + "  " + x_axis)
    lines.append(
        " " * label_width + "  " + f"{x_label}  |  " + "  ".join(
            f"{MARKERS[i % len(MARKERS)]}={name}"
            for i, name in enumerate(curves)
        )
    )
    if y_label:
        lines.insert(1 if title else 0, f"({y_label})")
    return "\n".join(lines)


def lateness_plot(
    result: ExperimentResult,
    scenario: str,
    methods: Optional[Sequence[str]] = None,
    width: int = 64,
    height: int = 18,
) -> str:
    """The paper-style plot of one scenario panel."""
    config = result.config
    labels = list(methods) if methods else [m.label for m in config.methods]
    means = mean_max_lateness(result.filter(scenario=scenario))
    curves: Dict[str, List[Tuple[float, float]]] = {}
    for label in labels:
        series = [
            (float(size), means[(scenario, label, size)])
            for size in config.system_sizes
            if (scenario, label, size) in means
        ]
        if series:
            curves[label] = series
    return render_plot(
        curves,
        width=width,
        height=height,
        title=f"[{config.name}] {scenario}: mean max task lateness vs size",
        x_label="processors",
        y_label="lateness",
    )
