"""Deterministic fault injection for the experiment engine.

The fault-tolerance layer (:mod:`repro.feast.backends`) is only
trustworthy if its failure paths are exercised on every push, and real
worker crashes are not reproducible. This module injects them on demand:
a :class:`FaultPlan` names which (scenario, graph-index, attempt)
coordinates fail and how, and the engine's worker entry point calls
:func:`maybe_inject` before running each chunk.

Fault kinds
-----------
``crash``
    SIGKILL the worker process — the classic OOM-killer simulation.
``error``
    Raise :class:`InjectedFaultError` inside the worker (retryable).
``hang``
    Sleep ``seconds`` — a stalled worker. Responds to SIGTERM, so the
    supervisor's first escalation rung recovers it.
``stubborn-hang``
    Ignore SIGTERM, then sleep — a wedged worker that only SIGKILL can
    reap; exercises the supervisor's full escalation ladder.
``spin``
    Busy-loop ``seconds`` of CPU — a livelocked worker (still dies to
    SIGTERM's default disposition, but burns a core until then).
``slow-io``
    Sleep ``seconds`` (conventionally short) — degraded storage or
    network, slowing the chunk without failing it.
``exit``
    ``os._exit`` with a nonzero code mid-chunk — the worker vanishes
    without journaling the chunk it was executing.
``truncate-journal``
    Chop ``amount`` bytes off the worker's checkpoint journal
    (mid-line, simulating a write torn by a crash) and exit nonzero;
    the relaunched worker must repair the torn tail and re-run that
    chunk. Requires the journal context (:func:`set_journal_context`,
    installed by the shard worker); a no-op where no journal exists.

Add custom kinds with :func:`register_fault_kind` — see
docs/EXTENDING.md ("Custom fault kinds").

Plans activate through an environment variable rather than module state
so that worker processes see them under both the ``fork`` and ``spawn``
start methods, and so a respawned pool inherits the active plan.
Injection is fully deterministic: the same plan against the same config
fails the same chunks on the same attempts, every run.

Fire-once faults
----------------
A chunk's driver-side attempt counter resets whenever its worker
process is relaunched, so a fault keyed on ``attempts=(0,)`` would
re-fire on every relaunch and never let the chunk pass. Specs with
``once=True`` instead fire a single time per campaign: the first
process to reach the coordinates atomically creates a marker file in
the plan's ``state_dir`` (``O_CREAT | O_EXCL`` — race-free across
shards) and later arrivals skip the fault. :func:`install` provisions a
state directory automatically when a plan needs one.

Safety: process-killing specs (``crash``, ``exit``,
``truncate-journal``) and ``stubborn-hang`` never fire in the process
that installed the plan (the parent records its pid at install time),
so an engine that has degraded to in-process execution survives a
crash-everything plan — the same way a real fleet-killing OOM cannot
SIGKILL the coordinator. This is also what guarantees chaos campaigns
terminate: however often a fault kills its worker, the chunk ultimately
lands in the parent's failover sweep, where the fault is inert.

This is a test harness. Nothing here runs unless a plan is installed.
"""

from __future__ import annotations

import importlib
import json
import os
import random
import signal
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.errors import ExperimentError

#: Environment variable carrying the active plan (JSON).
ENV_VAR = "REPRO_FAULT_PLAN"

#: Optional module imported before plan parsing, so subprocess/spawned
#: workers can register custom fault kinds (see docs/EXTENDING.md).
PLUGIN_ENV_VAR = "REPRO_FAULT_PLUGIN"

#: Fault kinds that terminate the executing process (parent-guarded).
_LETHAL_KINDS = frozenset({"crash", "exit", "truncate-journal"})


class InjectedFaultError(ExperimentError):
    """The exception an ``error`` fault spec raises inside a worker."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault at (scenario, graph-index) coordinates.

    ``attempts`` selects which execution attempts fire (0-based count of
    the chunk's prior failures); ``None`` fires on *every* attempt —
    i.e. a deterministic fault the engine must quarantine (``error``)
    or route around via failover (process-killing kinds). ``once=True``
    makes the spec fire a single time per campaign regardless of
    attempts (see module docstring).
    """

    scenario: str
    index: int
    kind: str
    attempts: Optional[Tuple[int, ...]] = (0,)
    #: ``hang``/``spin``/``slow-io`` only: how long the worker stalls.
    seconds: float = 60.0
    message: str = "injected fault"
    #: Fire at most once per campaign (needs the plan's state_dir).
    once: bool = False
    #: ``truncate-journal`` only: bytes chopped off the journal tail.
    amount: int = 20

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ExperimentError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)} (register custom kinds with "
                f"register_fault_kind)"
            )

    def fires_on(self, attempt: int) -> bool:
        return self.attempts is None or attempt in self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """A set of fault specs plus the installing (parent) pid."""

    faults: Tuple[FaultSpec, ...] = ()
    parent_pid: int = 0
    #: Directory holding fire-once marker files; provisioned by
    #: :func:`install` when any spec has ``once=True``.
    state_dir: str = ""

    def find(
        self, scenario: str, index: int, attempt: int
    ) -> Optional[FaultSpec]:
        for spec in self.faults:
            if (
                spec.scenario == scenario
                and spec.index == index
                and spec.fires_on(attempt)
            ):
                return spec
        return None

    def to_json(self) -> str:
        return json.dumps(
            {
                "parent_pid": self.parent_pid,
                "state_dir": self.state_dir,
                "faults": [
                    {
                        "scenario": s.scenario,
                        "index": s.index,
                        "kind": s.kind,
                        "attempts": (
                            None if s.attempts is None else list(s.attempts)
                        ),
                        "seconds": s.seconds,
                        "message": s.message,
                        "once": s.once,
                        "amount": s.amount,
                    }
                    for s in self.faults
                ],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(
            faults=tuple(
                FaultSpec(
                    scenario=f["scenario"],
                    index=f["index"],
                    kind=f["kind"],
                    attempts=(
                        None if f["attempts"] is None
                        else tuple(f["attempts"])
                    ),
                    seconds=f["seconds"],
                    message=f["message"],
                    once=bool(f.get("once", False)),
                    amount=int(f.get("amount", 20)),
                )
                for f in data["faults"]
            ),
            parent_pid=int(data.get("parent_pid", 0)),
            state_dir=str(data.get("state_dir", "")),
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        scenarios: Tuple[str, ...],
        n_graphs: int,
        rate: float = 0.1,
        kind: str = "error",
        attempts: Optional[Tuple[int, ...]] = (0,),
        seconds: float = 60.0,
    ) -> "FaultPlan":
        """A reproducible random plan: each (scenario, index) chunk fails
        with probability ``rate``, drawn from ``random.Random(seed)``."""
        rng = random.Random(seed)
        faults = tuple(
            FaultSpec(
                scenario=scenario,
                index=index,
                kind=kind,
                attempts=attempts,
                seconds=seconds,
                message=f"seeded fault ({seed})",
            )
            for scenario in scenarios
            for index in range(n_graphs)
            if rng.random() < rate
        )
        return cls(faults=faults)


# ----------------------------------------------------------------------
# Worker-side context: facts only the executing process knows (its
# checkpoint journal), consumed by fault kinds that corrupt local state.
# ----------------------------------------------------------------------
_context: Dict[str, Optional[str]] = {"journal": None}


def set_journal_context(path: Optional[str]) -> None:
    """Tell the injector which journal this process appends to.

    Installed by the shard worker before its driver runs; the
    ``truncate-journal`` kind is a no-op in processes without one
    (pool workers journal in the parent, which is immune anyway).
    """
    _context["journal"] = path


def install(plan: FaultPlan) -> FaultPlan:
    """Activate ``plan`` for this process and all (future) workers.

    Fills in the installing pid and — when any spec is fire-once — a
    state directory for the markers; returns the (possibly augmented)
    plan actually installed.
    """
    if plan.parent_pid == 0:
        plan = replace(plan, parent_pid=os.getpid())
    if not plan.state_dir and any(s.once for s in plan.faults):
        plan = replace(
            plan, state_dir=tempfile.mkdtemp(prefix="repro-faults-")
        )
    os.environ[ENV_VAR] = plan.to_json()
    return plan


def uninstall() -> None:
    """Deactivate any installed plan."""
    os.environ.pop(ENV_VAR, None)


@contextmanager
def active(plan: FaultPlan) -> Iterator[None]:
    """Install ``plan`` for the duration of a block (tests use this).

    A state directory provisioned by :func:`install` for this block is
    removed again on exit.
    """
    provisioned = not plan.state_dir
    installed = install(plan)
    try:
        yield
    finally:
        uninstall()
        if provisioned and installed.state_dir:
            import shutil

            shutil.rmtree(installed.state_dir, ignore_errors=True)


def _claim_once(plan: FaultPlan, spec: FaultSpec) -> bool:
    """Atomically claim a fire-once fault; ``False`` if already fired."""
    if not plan.state_dir:
        return True  # no marker dir: behave like an ordinary spec
    safe = "".join(
        c if c.isalnum() or c in "-_" else "_" for c in spec.scenario
    )
    marker = os.path.join(
        plan.state_dir, f"{spec.kind}-{safe}-{spec.index}.fired"
    )
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        return False
    except OSError:
        return True  # unusable state dir: fail open, keep injecting
    os.close(fd)
    return True


# ----------------------------------------------------------------------
# Fault-kind handlers (the registry is the extension point)
# ----------------------------------------------------------------------
def _fault_crash(spec: FaultSpec) -> None:
    sigkill = getattr(signal, "SIGKILL", None)
    if sigkill is None:  # pragma: no cover — non-POSIX fallback
        os._exit(173)
    os.kill(os.getpid(), sigkill)


def _fault_exit(spec: FaultSpec) -> None:
    os._exit(17)


def _fault_hang(spec: FaultSpec) -> None:
    time.sleep(spec.seconds)


def _fault_stubborn_hang(spec: FaultSpec) -> None:
    previous = signal.signal(signal.SIGTERM, signal.SIG_IGN)
    try:
        time.sleep(spec.seconds)
    finally:
        signal.signal(signal.SIGTERM, previous)


def _fault_spin(spec: FaultSpec) -> None:
    deadline = time.monotonic() + spec.seconds
    while time.monotonic() < deadline:
        pass


def _fault_truncate_journal(spec: FaultSpec) -> None:
    path = _context.get("journal")
    if path is None or not os.path.exists(path):
        return  # no journal in this process: nothing to corrupt
    with open(path, "rb") as fp:
        data = fp.read()
    header_end = data.find(b"\n") + 1
    if header_end <= 0 or len(data) <= header_end:
        return  # only a header (or torn header): nothing to chop
    cut = max(header_end, len(data) - max(1, spec.amount))
    if cut == len(data):
        return
    with open(path, "rb+") as fp:
        fp.truncate(cut)
        fp.flush()
        os.fsync(fp.fileno())
    # Die immediately: appending after the truncation would bury the
    # torn line under complete ones, which no recovery path repairs.
    os._exit(19)


def _fault_error(spec: FaultSpec) -> None:
    raise InjectedFaultError(spec.message)


#: Kind name → handler. :func:`register_fault_kind` extends this.
FAULT_KINDS: Dict[str, Callable[[FaultSpec], None]] = {
    "crash": _fault_crash,
    "error": _fault_error,
    "hang": _fault_hang,
    "stubborn-hang": _fault_stubborn_hang,
    "spin": _fault_spin,
    "slow-io": _fault_hang,
    "exit": _fault_exit,
    "truncate-journal": _fault_truncate_journal,
}

#: Back-compat: the original kind tuple (pre-chaos API).
KINDS = ("crash", "hang", "error")


def register_fault_kind(
    name: str, handler: Callable[[FaultSpec], None], lethal: bool = False
) -> None:
    """Register a custom fault kind under ``name``.

    ``handler(spec)`` runs inside the injected-into process.
    ``lethal=True`` adds the parent-pid guard: the kind never fires in
    the process that installed the plan (do this for anything that
    kills or corrupts its process). For workers spawned as fresh
    interpreters (the subprocess backend), put the registration in an
    importable module and point ``REPRO_FAULT_PLUGIN`` at it — see
    docs/EXTENDING.md.
    """
    FAULT_KINDS[name] = handler
    if lethal:
        global _LETHAL_KINDS
        _LETHAL_KINDS = _LETHAL_KINDS | {name}


def _load_plugin() -> None:
    module = os.environ.get(PLUGIN_ENV_VAR)
    if module:
        importlib.import_module(module)


def maybe_inject(scenario: str, index: int, attempt: int) -> None:
    """Fire the planned fault for these coordinates, if any.

    Called by the engine's worker entry point before each chunk runs.
    With no plan installed this is a single dict lookup.
    """
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return
    _load_plugin()
    plan = FaultPlan.from_json(raw)
    spec = plan.find(scenario, index, attempt)
    if spec is None:
        return
    in_parent = os.getpid() == plan.parent_pid
    if in_parent and (spec.kind in _LETHAL_KINDS or spec.kind == "stubborn-hang"):
        return  # never kill or wedge the coordinating process
    if spec.once and not _claim_once(plan, spec):
        return
    handler = FAULT_KINDS[spec.kind]
    if spec.kind == "error":
        raise InjectedFaultError(
            f"{spec.message} [scenario={scenario} index={index}]"
        )
    handler(spec)
