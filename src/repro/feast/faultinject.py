"""Deterministic fault injection for the experiment engine.

The fault-tolerance layer (:mod:`repro.feast.parallel`) is only
trustworthy if its failure paths are exercised on every push, and real
worker crashes are not reproducible. This module injects them on demand:
a :class:`FaultPlan` names which (scenario, graph-index, attempt)
coordinates fail and how — ``crash`` (SIGKILL the worker), ``hang``
(sleep past any trial budget), or ``error`` (raise) — and the engine's
worker entry point calls :func:`maybe_inject` before running each chunk.

Plans activate through an environment variable rather than module state
so that worker processes see them under both the ``fork`` and ``spawn``
start methods, and so a respawned pool inherits the active plan.
Injection is fully deterministic: the same plan against the same config
fails the same chunks on the same attempts, every run.

Safety: ``crash`` specs never fire in the process that installed the
plan (the parent records its pid at install time), so an engine that has
degraded to in-process execution survives a crash-everything plan — the
same way a real fleet-killing OOM cannot SIGKILL the coordinator.

This is a test harness. Nothing here runs unless a plan is installed.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.errors import ExperimentError

#: Environment variable carrying the active plan (JSON).
ENV_VAR = "REPRO_FAULT_PLAN"

KINDS = ("crash", "hang", "error")


class InjectedFaultError(ExperimentError):
    """The exception an ``error`` fault spec raises inside a worker."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault at (scenario, graph-index) coordinates.

    ``attempts`` selects which execution attempts fire (0-based count of
    the chunk's prior failures); ``None`` fires on *every* attempt —
    i.e. a deterministic fault the engine must quarantine rather than
    retry through.
    """

    scenario: str
    index: int
    kind: str
    attempts: Optional[Tuple[int, ...]] = (0,)
    #: ``hang`` only: how long the worker sleeps.
    seconds: float = 60.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ExperimentError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}"
            )

    def fires_on(self, attempt: int) -> bool:
        return self.attempts is None or attempt in self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """A set of fault specs plus the installing (parent) pid."""

    faults: Tuple[FaultSpec, ...] = ()
    parent_pid: int = 0

    def find(
        self, scenario: str, index: int, attempt: int
    ) -> Optional[FaultSpec]:
        for spec in self.faults:
            if (
                spec.scenario == scenario
                and spec.index == index
                and spec.fires_on(attempt)
            ):
                return spec
        return None

    def to_json(self) -> str:
        return json.dumps(
            {
                "parent_pid": self.parent_pid,
                "faults": [
                    {
                        "scenario": s.scenario,
                        "index": s.index,
                        "kind": s.kind,
                        "attempts": (
                            None if s.attempts is None else list(s.attempts)
                        ),
                        "seconds": s.seconds,
                        "message": s.message,
                    }
                    for s in self.faults
                ],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        return cls(
            faults=tuple(
                FaultSpec(
                    scenario=f["scenario"],
                    index=f["index"],
                    kind=f["kind"],
                    attempts=(
                        None if f["attempts"] is None
                        else tuple(f["attempts"])
                    ),
                    seconds=f["seconds"],
                    message=f["message"],
                )
                for f in data["faults"]
            ),
            parent_pid=int(data.get("parent_pid", 0)),
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        scenarios: Tuple[str, ...],
        n_graphs: int,
        rate: float = 0.1,
        kind: str = "error",
        attempts: Optional[Tuple[int, ...]] = (0,),
        seconds: float = 60.0,
    ) -> "FaultPlan":
        """A reproducible random plan: each (scenario, index) chunk fails
        with probability ``rate``, drawn from ``random.Random(seed)``."""
        rng = random.Random(seed)
        faults = tuple(
            FaultSpec(
                scenario=scenario,
                index=index,
                kind=kind,
                attempts=attempts,
                seconds=seconds,
                message=f"seeded fault ({seed})",
            )
            for scenario in scenarios
            for index in range(n_graphs)
            if rng.random() < rate
        )
        return cls(faults=faults)


def install(plan: FaultPlan) -> None:
    """Activate ``plan`` for this process and all (future) workers."""
    if plan.parent_pid == 0:
        plan = FaultPlan(faults=plan.faults, parent_pid=os.getpid())
    os.environ[ENV_VAR] = plan.to_json()


def uninstall() -> None:
    """Deactivate any installed plan."""
    os.environ.pop(ENV_VAR, None)


@contextmanager
def active(plan: FaultPlan) -> Iterator[None]:
    """Install ``plan`` for the duration of a block (tests use this)."""
    install(plan)
    try:
        yield
    finally:
        uninstall()


def maybe_inject(scenario: str, index: int, attempt: int) -> None:
    """Fire the planned fault for these coordinates, if any.

    Called by the engine's worker entry point before each chunk runs.
    With no plan installed this is a single dict lookup.
    """
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return
    plan = FaultPlan.from_json(raw)
    spec = plan.find(scenario, index, attempt)
    if spec is None:
        return
    if spec.kind == "crash":
        if os.getpid() == plan.parent_pid:
            return  # never kill the coordinating process
        sigkill = getattr(signal, "SIGKILL", None)
        if sigkill is None:  # pragma: no cover — non-POSIX fallback
            os._exit(173)
        os.kill(os.getpid(), sigkill)
        return  # pragma: no cover — unreachable
    if spec.kind == "hang":
        time.sleep(spec.seconds)
        return
    raise InjectedFaultError(
        f"{spec.message} [scenario={scenario} index={index}]"
    )
