"""Persistence of experiment results: JSON save/load and run comparison.

Full-scale experiments take minutes; their raw trial records are worth
keeping. The on-disk format is a single JSON document with the config's
identifying fields and one record object per trial, versioned so old runs
stay readable. :func:`compare` diffs two runs of the same experiment —
the regression-tracking primitive for "did my change move the curves?".
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, IO, List, Optional, Tuple

from repro.errors import SerializationError
from repro.feast.aggregate import mean_max_lateness
from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.instrumentation import PhaseTimings
from repro.feast.runner import ExperimentResult, TrialRecord

FORMAT = "repro-experiment-result"
VERSION = 1


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Encode a result (config identity + all trial records)."""
    config = result.config
    return {
        "format": FORMAT,
        "version": VERSION,
        "config": {
            "name": config.name,
            "description": config.description,
            "scenarios": list(config.scenarios),
            "n_graphs": config.n_graphs,
            "seed": config.seed,
            "system_sizes": list(config.system_sizes),
            "topology": config.topology,
            "policy": config.policy,
            "respect_release_times": config.respect_release_times,
            "methods": [
                {
                    "label": m.label,
                    "metric": m.metric,
                    "comm": m.comm,
                    "surplus": m.surplus,
                    "threshold_factor": m.threshold_factor,
                    "baseline": m.baseline,
                }
                for m in config.methods
            ],
        },
        "elapsed_seconds": result.elapsed_seconds,
        "jobs": result.jobs,
        "timings": (
            result.timings.as_dict() if result.timings is not None else None
        ),
        "records": [r.as_dict() for r in result.records],
    }


def result_from_dict(data: Dict[str, Any]) -> ExperimentResult:
    """Decode a result saved by :func:`result_to_dict`.

    The reconstructed config carries the run's identity (name, methods,
    sweep); custom ``graph_factory`` callables are not serializable and
    come back as ``None`` — fine for analysis, not for re-running factory
    experiments from the file alone.
    """
    if not isinstance(data, dict) or data.get("format") != FORMAT:
        raise SerializationError(f"not a {FORMAT} document")
    if data.get("version") != VERSION:
        raise SerializationError(
            f"unsupported version {data.get('version')!r}"
        )
    try:
        c = data["config"]
        config = ExperimentConfig(
            name=c["name"],
            description=c["description"],
            methods=tuple(
                MethodSpec(
                    label=m["label"],
                    metric=m["metric"],
                    comm=m["comm"],
                    surplus=m["surplus"],
                    threshold_factor=m["threshold_factor"],
                    baseline=m.get("baseline"),
                )
                for m in c["methods"]
            ),
            scenarios=tuple(c["scenarios"]),
            n_graphs=c["n_graphs"],
            seed=c["seed"],
            system_sizes=tuple(c["system_sizes"]),
            topology=c["topology"],
            policy=c["policy"],
            respect_release_times=c["respect_release_times"],
        )
        records = [TrialRecord(**r) for r in data["records"]]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed result document: {exc}") from exc
    result = ExperimentResult(config=config, records=records)
    result.elapsed_seconds = float(data.get("elapsed_seconds", 0.0))
    result.jobs = int(data.get("jobs", 1))
    timings = data.get("timings")
    if timings is not None:
        result.timings = PhaseTimings(
            **{k: float(v) for k, v in timings.items()}
        )
    return result


def save_result(result: ExperimentResult, path: str) -> None:
    """Write a result to ``path`` as JSON."""
    with open(path, "w") as fp:
        json.dump(result_to_dict(result), fp)


def load_result(path: str) -> ExperimentResult:
    """Read a result written by :func:`save_result`."""
    with open(path) as fp:
        try:
            data = json.load(fp)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid JSON in {path!r}: {exc}") from exc
    return result_from_dict(data)


@dataclass(frozen=True)
class SeriesDelta:
    """Change of one (scenario, method, size) mean between two runs."""

    scenario: str
    method: str
    n_processors: int
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def relative(self) -> float:
        return self.delta / abs(self.before) if self.before else float("inf")


def compare(
    before: ExperimentResult,
    after: ExperimentResult,
    threshold: float = 0.0,
) -> List[SeriesDelta]:
    """Per-point differences of mean max lateness between two runs.

    Returns the points present in both runs whose absolute change exceeds
    ``threshold``, worst regressions (most positive delta) first.
    """
    means_before = mean_max_lateness(before.records)
    means_after = mean_max_lateness(after.records)
    deltas = [
        SeriesDelta(
            scenario=key[0],
            method=key[1],
            n_processors=key[2],
            before=means_before[key],
            after=means_after[key],
        )
        for key in means_before
        if key in means_after
    ]
    return sorted(
        (d for d in deltas if abs(d.delta) > threshold),
        key=lambda d: -d.delta,
    )
