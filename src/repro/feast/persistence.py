"""Persistence of experiment results: JSON save/load, run comparison,
and the sweep checkpoint journal.

Full-scale experiments take minutes; their raw trial records are worth
keeping. The on-disk result format is a single JSON document with the
config's identifying fields and one record object per trial, versioned
so old runs stay readable. :func:`compare` diffs two runs of the same
experiment — the regression-tracking primitive for "did my change move
the curves?".

Two crash-safety layers live here as well:

* :func:`save_result` writes **atomically** — the document is serialized
  in memory, written to a temp file in the destination directory,
  fsynced, and ``os.replace``d into place, so an interrupt can never
  leave a truncated or half-written JSON behind;
* :class:`CheckpointJournal` is the append-only journal behind
  ``run_experiment(..., checkpoint=path)``: the engine appends one line
  per completed trial chunk (flushed and fsynced), and a resumed run
  replays the journal and re-runs only the missing chunks. The header
  pins a fingerprint of the record-determining config fields, so
  resuming with a changed experiment raises :class:`CheckpointError`
  instead of silently mixing incompatible records.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, IO, List, Optional, Tuple

from repro.errors import CheckpointError, ExperimentWarning, SerializationError
from repro.feast.aggregate import mean_max_lateness
from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.instrumentation import PhaseTimings, TrialFailure
from repro.feast.runner import ExperimentResult, TrialRecord
from repro.obs.export import atomic_write_text

#: Backward-compatible alias — the implementation moved to
#: :func:`repro.obs.export.atomic_write_text` so the event log and the
#: result store share one crash-safe writer.
_atomic_write_text = atomic_write_text

FORMAT = "repro-experiment-result"
VERSION = 1

CHECKPOINT_FORMAT = "repro-sweep-checkpoint"
CHECKPOINT_VERSION = 1


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Encode a result (config identity + all trial records)."""
    config = result.config
    return {
        "format": FORMAT,
        "version": VERSION,
        "config": {
            "name": config.name,
            "description": config.description,
            "scenarios": list(config.scenarios),
            "n_graphs": config.n_graphs,
            "seed": config.seed,
            "system_sizes": list(config.system_sizes),
            "topology": config.topology,
            "policy": config.policy,
            "respect_release_times": config.respect_release_times,
            "speed_profile": config.speed_profile,
            "trial_timeout": config.trial_timeout,
            "max_retries": config.max_retries,
            "methods": [
                {
                    "label": m.label,
                    "metric": m.metric,
                    "comm": m.comm,
                    "surplus": m.surplus,
                    "threshold_factor": m.threshold_factor,
                    "cost_per_item": m.cost_per_item,
                    "baseline": m.baseline,
                    "capacity_aware": m.capacity_aware,
                    "clamp_to_anchors": m.clamp_to_anchors,
                }
                for m in config.methods
            ],
        },
        "elapsed_seconds": result.elapsed_seconds,
        "jobs": result.jobs,
        "timings": (
            result.timings.as_dict() if result.timings is not None else None
        ),
        "failures": [f.as_dict() for f in result.failures],
        "quarantined": [[s, i] for s, i in result.quarantined],
        "fallback_reason": result.fallback_reason,
        "records": [r.as_dict() for r in result.records],
    }


def result_from_dict(data: Dict[str, Any]) -> ExperimentResult:
    """Decode a result saved by :func:`result_to_dict`.

    The reconstructed config carries the run's identity (name, methods,
    sweep); custom ``graph_factory`` callables are not serializable and
    come back as ``None`` — fine for analysis, not for re-running factory
    experiments from the file alone. Documents written before the
    fault-tolerance fields existed decode with empty failure/quarantine
    lists.
    """
    if not isinstance(data, dict) or data.get("format") != FORMAT:
        raise SerializationError(f"not a {FORMAT} document")
    if data.get("version") != VERSION:
        raise SerializationError(
            f"unsupported version {data.get('version')!r}"
        )
    try:
        c = data["config"]
        config = ExperimentConfig(
            name=c["name"],
            description=c["description"],
            methods=tuple(
                MethodSpec(
                    label=m["label"],
                    metric=m["metric"],
                    comm=m["comm"],
                    surplus=m["surplus"],
                    threshold_factor=m["threshold_factor"],
                    cost_per_item=m.get("cost_per_item", 1.0),
                    baseline=m.get("baseline"),
                    capacity_aware=m.get("capacity_aware", False),
                    clamp_to_anchors=m.get("clamp_to_anchors", True),
                )
                for m in c["methods"]
            ),
            scenarios=tuple(c["scenarios"]),
            n_graphs=c["n_graphs"],
            seed=c["seed"],
            system_sizes=tuple(c["system_sizes"]),
            topology=c["topology"],
            policy=c["policy"],
            respect_release_times=c["respect_release_times"],
            speed_profile=c.get("speed_profile", "uniform"),
            trial_timeout=c.get("trial_timeout"),
            max_retries=c.get("max_retries", 2),
        )
        records = [TrialRecord(**r) for r in data["records"]]
        failures = [TrialFailure(**f) for f in data.get("failures", [])]
        quarantined = [
            (str(s), int(i)) for s, i in data.get("quarantined", [])
        ]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed result document: {exc}") from exc
    result = ExperimentResult(config=config, records=records)
    result.elapsed_seconds = float(data.get("elapsed_seconds", 0.0))
    result.jobs = int(data.get("jobs", 1))
    result.failures = failures
    result.quarantined = quarantined
    result.fallback_reason = data.get("fallback_reason")
    timings = data.get("timings")
    if timings is not None:
        result.timings = PhaseTimings(
            **{k: float(v) for k, v in timings.items()}
        )
    return result


def save_result(result: ExperimentResult, path: str) -> None:
    """Write a result to ``path`` as JSON, atomically."""
    _atomic_write_text(path, json.dumps(result_to_dict(result)))


def load_result(path: str) -> ExperimentResult:
    """Read a result written by :func:`save_result`."""
    with open(path) as fp:
        try:
            data = json.load(fp)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid JSON in {path!r}: {exc}") from exc
    return result_from_dict(data)


# ----------------------------------------------------------------------
# Sweep checkpoint journal
# ----------------------------------------------------------------------
def _config_identity(config: ExperimentConfig) -> Dict[str, Any]:
    """The record-determining fields of a config, as plain JSON data.

    Deliberately excludes ``description`` (cosmetic), the
    fault-tolerance knobs ``trial_timeout``/``max_retries`` (they bound
    *how* trials run, never what a completed trial records), and
    ``batch`` (the batch kernel is bit-identical to the scalar path),
    so a sweep can be resumed with, say, a longer timeout or the other
    distribute engine. A ``graph_factory`` is
    represented by its qualified name — the best identity available for
    an arbitrary callable.
    """
    factory = config.graph_factory
    return {
        "name": config.name,
        "seed": config.seed,
        "scenarios": list(config.scenarios),
        "n_graphs": config.n_graphs,
        "system_sizes": list(config.system_sizes),
        "topology": config.topology,
        "policy": config.policy,
        "respect_release_times": config.respect_release_times,
        "speed_profile": config.speed_profile,
        "methods": [asdict(m) for m in config.methods],
        "graph_config": asdict(config.graph_config),
        "graph_factory": (
            None if factory is None
            else getattr(factory, "__qualname__", repr(factory))
        ),
    }


def config_fingerprint(config: ExperimentConfig) -> str:
    """Stable hash of the record-determining config fields."""
    blob = json.dumps(_config_identity(config), sort_keys=True)
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()


@dataclass
class ReplayedChunk:
    """One completed chunk read back from a checkpoint journal.

    Duck-compatible with :class:`repro.feast.parallel.ChunkResult` where
    the engine needs it (``records``, ``timings``, ``failures``,
    ``n_trials``).
    """

    scenario: str
    index: int
    records: Dict[Tuple[int, str], TrialRecord]
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    failures: List[TrialFailure] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.records)


class CheckpointJournal:
    """Append-only journal of completed trial chunks.

    Line 1 is a header (format, version, config fingerprint); every
    further line is one completed chunk's records, timings, and non-fatal
    failure events. Appends are flushed and fsynced, so after a crash the
    journal holds every chunk whose append returned — at worst plus one
    truncated trailing line, which :meth:`_open_existing` repairs (the
    interrupted chunk is simply re-run).
    """

    def __init__(self, path: str, config: ExperimentConfig) -> None:
        self.path = os.path.abspath(path)
        self.fingerprint = config_fingerprint(config)
        self.experiment = config.name
        #: Chunks recovered from an existing journal, keyed by
        #: (scenario, graph index).
        self.replayed: Dict[Tuple[str, int], ReplayedChunk] = {}
        self._fp: Optional[IO[str]] = None
        try:
            exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        except OSError as exc:
            raise CheckpointError(
                f"cannot stat checkpoint {self.path!r}: {exc}"
            ) from exc
        if exists:
            self._fp = self._open_existing()
        else:
            self._fp = self._create()

    # ------------------------------------------------------------------
    def _header_line(self) -> str:
        return json.dumps(
            {
                "format": CHECKPOINT_FORMAT,
                "version": CHECKPOINT_VERSION,
                "fingerprint": self.fingerprint,
                "experiment": self.experiment,
            },
            sort_keys=True,
        )

    def _create(self) -> IO[str]:
        directory = os.path.dirname(self.path) or "."
        if not os.path.isdir(directory):
            raise CheckpointError(
                f"checkpoint directory does not exist: {directory!r}"
            )
        try:
            fp = open(self.path, "w")
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint {self.path!r}: {exc}"
            ) from exc
        fp.write(self._header_line() + "\n")
        fp.flush()
        os.fsync(fp.fileno())
        return fp

    def _open_existing(self) -> IO[str]:
        try:
            with open(self.path) as fp:
                text = fp.read()
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {self.path!r}: {exc}"
            ) from exc
        lines = text.splitlines()
        try:
            header = json.loads(lines[0])
        except (json.JSONDecodeError, IndexError) as exc:
            raise CheckpointError(
                f"{self.path!r} is not a checkpoint journal: bad header"
            ) from exc
        if (
            not isinstance(header, dict)
            or header.get("format") != CHECKPOINT_FORMAT
        ):
            raise CheckpointError(
                f"{self.path!r} is not a {CHECKPOINT_FORMAT} journal"
            )
        if header.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version "
                f"{header.get('version')!r} in {self.path!r}"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {self.path!r} was written by a different "
                f"experiment configuration (journal fingerprint "
                f"{header.get('fingerprint')!r}, this config "
                f"{self.fingerprint!r}); refusing to resume — delete the "
                "file or use a fresh checkpoint path"
            )
        truncated = False
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            last = lineno == len(lines)
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                if last and not text.endswith("\n"):
                    # A crash mid-append left a partial trailing line;
                    # drop it and re-run that chunk.
                    truncated = True
                    break
                raise CheckpointError(
                    f"corrupt checkpoint line {lineno} in {self.path!r}"
                ) from None
            self._replay_line(data, lineno)
        if truncated or (len(lines) > 0 and not text.endswith("\n")):
            warnings.warn(
                f"checkpoint {self.path!r} ends in a partial line "
                "(interrupted append); dropping it and re-running that "
                "chunk",
                ExperimentWarning,
                stacklevel=3,
            )
            sane = "\n".join(
                [lines[0]]
                + [ln for ln in lines[1:] if self._is_complete_line(ln)]
            ) + "\n"
            _atomic_write_text(self.path, sane)
        fp = open(self.path, "a")
        return fp

    @staticmethod
    def _is_complete_line(line: str) -> bool:
        if not line.strip():
            return False
        try:
            json.loads(line)
        except json.JSONDecodeError:
            return False
        return True

    def _replay_line(self, data: Dict[str, Any], lineno: int) -> None:
        try:
            if data.get("kind") != "chunk":
                raise KeyError("kind")
            chunk = ReplayedChunk(
                scenario=str(data["scenario"]),
                index=int(data["index"]),
                records={
                    (int(e["size"]), str(e["method"])): TrialRecord(
                        **e["record"]
                    )
                    for e in data["records"]
                },
                timings=PhaseTimings(
                    **{k: float(v) for k, v in data["timings"].items()}
                ),
                failures=[
                    TrialFailure(**f) for f in data.get("failures", [])
                ],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed chunk on checkpoint line {lineno} in "
                f"{self.path!r}: {exc}"
            ) from exc
        self.replayed[(chunk.scenario, chunk.index)] = chunk

    # ------------------------------------------------------------------
    def append(self, chunk) -> None:
        """Journal one completed chunk (flushed and fsynced)."""
        if self._fp is None:
            raise CheckpointError(
                f"checkpoint {self.path!r} is closed"
            )
        data = {
            "kind": "chunk",
            "scenario": chunk.scenario,
            "index": chunk.index,
            "records": [
                {"size": size, "method": method, "record": record.as_dict()}
                for (size, method), record in chunk.records.items()
            ],
            "timings": chunk.timings.as_dict(),
            "failures": [f.as_dict() for f in chunk.failures],
        }
        self._fp.write(json.dumps(data, sort_keys=True) + "\n")
        self._fp.flush()
        os.fsync(self._fp.fileno())

    def close(self) -> None:
        if self._fp is not None:
            self._fp.close()
            self._fp = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class SeriesDelta:
    """Change of one (scenario, method, size) mean between two runs."""

    scenario: str
    method: str
    n_processors: int
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def relative(self) -> float:
        return self.delta / abs(self.before) if self.before else float("inf")


def compare(
    before: ExperimentResult,
    after: ExperimentResult,
    threshold: float = 0.0,
) -> List[SeriesDelta]:
    """Per-point differences of mean max lateness between two runs.

    Returns the points present in both runs whose absolute change exceeds
    ``threshold``, worst regressions (most positive delta) first.
    """
    means_before = mean_max_lateness(before.records)
    means_after = mean_max_lateness(after.records)
    deltas = [
        SeriesDelta(
            scenario=key[0],
            method=key[1],
            n_processors=key[2],
            before=means_before[key],
            after=means_after[key],
        )
        for key in means_before
        if key in means_after
    ]
    return sorted(
        (d for d in deltas if abs(d.delta) > threshold),
        key=lambda d: -d.delta,
    )
