"""Persistence of experiment results: JSON save/load, run comparison,
and the sweep checkpoint journal.

Full-scale experiments take minutes; their raw trial records are worth
keeping. The on-disk result format is a single JSON document with the
config's identifying fields and one record object per trial, versioned
so old runs stay readable. :func:`compare` diffs two runs of the same
experiment — the regression-tracking primitive for "did my change move
the curves?".

Two crash-safety layers live here as well:

* :func:`save_result` writes **atomically** — the document is serialized
  in memory, written to a temp file in the destination directory,
  fsynced, and ``os.replace``d into place, so an interrupt can never
  leave a truncated or half-written JSON behind;
* :class:`CheckpointJournal` is the append-only journal behind
  ``run_experiment(..., checkpoint=path)``: the engine appends one line
  per completed trial chunk (flushed and fsynced), and a resumed run
  replays the journal and re-runs only the missing chunks. The header
  pins a fingerprint of the record-determining config fields, so
  resuming with a changed experiment raises :class:`CheckpointError`
  instead of silently mixing incompatible records.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import CheckpointError, ExperimentWarning, SerializationError
from repro.feast.aggregate import mean_max_lateness
from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.instrumentation import PhaseTimings, TrialFailure
from repro.feast.runner import ExperimentResult, TrialRecord
from repro.obs.export import atomic_write_text, fsync_directory

#: Backward-compatible alias — the implementation moved to
#: :func:`repro.obs.export.atomic_write_text` so the event log and the
#: result store share one crash-safe writer.
_atomic_write_text = atomic_write_text

FORMAT = "repro-experiment-result"
VERSION = 1

CHECKPOINT_FORMAT = "repro-sweep-checkpoint"
CHECKPOINT_VERSION = 1


def result_to_dict(result: ExperimentResult) -> Dict[str, Any]:
    """Encode a result (config identity + all trial records)."""
    config = result.config
    return {
        "format": FORMAT,
        "version": VERSION,
        "config": {
            "name": config.name,
            "description": config.description,
            "scenarios": list(config.scenarios),
            "n_graphs": config.n_graphs,
            "seed": config.seed,
            "system_sizes": list(config.system_sizes),
            "topology": config.topology,
            "policy": config.policy,
            "respect_release_times": config.respect_release_times,
            "speed_profile": config.speed_profile,
            "trial_timeout": config.trial_timeout,
            "max_retries": config.max_retries,
            "methods": [
                {
                    "label": m.label,
                    "metric": m.metric,
                    "comm": m.comm,
                    "surplus": m.surplus,
                    "threshold_factor": m.threshold_factor,
                    "cost_per_item": m.cost_per_item,
                    "baseline": m.baseline,
                    "capacity_aware": m.capacity_aware,
                    "clamp_to_anchors": m.clamp_to_anchors,
                }
                for m in config.methods
            ],
        },
        "elapsed_seconds": result.elapsed_seconds,
        "jobs": result.jobs,
        "timings": (
            result.timings.as_dict() if result.timings is not None else None
        ),
        "failures": [f.as_dict() for f in result.failures],
        "quarantined": [[s, i] for s, i in result.quarantined],
        "fallback_reason": result.fallback_reason,
        "records": [r.as_dict() for r in result.records],
    }


def result_from_dict(data: Dict[str, Any]) -> ExperimentResult:
    """Decode a result saved by :func:`result_to_dict`.

    The reconstructed config carries the run's identity (name, methods,
    sweep); custom ``graph_factory`` callables are not serializable and
    come back as ``None`` — fine for analysis, not for re-running factory
    experiments from the file alone. Documents written before the
    fault-tolerance fields existed decode with empty failure/quarantine
    lists.
    """
    if not isinstance(data, dict) or data.get("format") != FORMAT:
        raise SerializationError(f"not a {FORMAT} document")
    if data.get("version") != VERSION:
        raise SerializationError(
            f"unsupported version {data.get('version')!r}"
        )
    try:
        c = data["config"]
        config = ExperimentConfig(
            name=c["name"],
            description=c["description"],
            methods=tuple(
                MethodSpec(
                    label=m["label"],
                    metric=m["metric"],
                    comm=m["comm"],
                    surplus=m["surplus"],
                    threshold_factor=m["threshold_factor"],
                    cost_per_item=m.get("cost_per_item", 1.0),
                    baseline=m.get("baseline"),
                    capacity_aware=m.get("capacity_aware", False),
                    clamp_to_anchors=m.get("clamp_to_anchors", True),
                )
                for m in c["methods"]
            ),
            scenarios=tuple(c["scenarios"]),
            n_graphs=c["n_graphs"],
            seed=c["seed"],
            system_sizes=tuple(c["system_sizes"]),
            topology=c["topology"],
            policy=c["policy"],
            respect_release_times=c["respect_release_times"],
            speed_profile=c.get("speed_profile", "uniform"),
            trial_timeout=c.get("trial_timeout"),
            max_retries=c.get("max_retries", 2),
        )
        records = [TrialRecord(**r) for r in data["records"]]
        failures = [TrialFailure(**f) for f in data.get("failures", [])]
        quarantined = [
            (str(s), int(i)) for s, i in data.get("quarantined", [])
        ]
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed result document: {exc}") from exc
    result = ExperimentResult(config=config, records=records)
    result.elapsed_seconds = float(data.get("elapsed_seconds", 0.0))
    result.jobs = int(data.get("jobs", 1))
    result.failures = failures
    result.quarantined = quarantined
    result.fallback_reason = data.get("fallback_reason")
    timings = data.get("timings")
    if timings is not None:
        result.timings = PhaseTimings(
            **{k: float(v) for k, v in timings.items()}
        )
    return result


def save_result(result: ExperimentResult, path: str) -> None:
    """Write a result to ``path`` as JSON, atomically."""
    _atomic_write_text(path, json.dumps(result_to_dict(result)))


def load_result(path: str) -> ExperimentResult:
    """Read a result written by :func:`save_result`."""
    with open(path) as fp:
        try:
            data = json.load(fp)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid JSON in {path!r}: {exc}") from exc
    return result_from_dict(data)


# ----------------------------------------------------------------------
# Sweep checkpoint journal
# ----------------------------------------------------------------------
def _config_identity(config: ExperimentConfig) -> Dict[str, Any]:
    """The record-determining fields of a config, as plain JSON data.

    Deliberately excludes ``description`` (cosmetic), the
    fault-tolerance knobs ``trial_timeout``/``max_retries`` (they bound
    *how* trials run, never what a completed trial records), and
    ``batch`` (the batch kernel is bit-identical to the scalar path),
    so a sweep can be resumed with, say, a longer timeout or the other
    distribute engine. A ``graph_factory`` is
    represented by its qualified name — the best identity available for
    an arbitrary callable.
    """
    factory = config.graph_factory
    return {
        "name": config.name,
        "seed": config.seed,
        "scenarios": list(config.scenarios),
        "n_graphs": config.n_graphs,
        "system_sizes": list(config.system_sizes),
        "topology": config.topology,
        "policy": config.policy,
        "respect_release_times": config.respect_release_times,
        "speed_profile": config.speed_profile,
        "methods": [asdict(m) for m in config.methods],
        "graph_config": asdict(config.graph_config),
        "graph_factory": (
            None if factory is None
            else getattr(factory, "__qualname__", repr(factory))
        ),
    }


def config_fingerprint(config: ExperimentConfig) -> str:
    """Stable hash of the record-determining config fields."""
    blob = json.dumps(_config_identity(config), sort_keys=True)
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()


@dataclass
class ReplayedChunk:
    """One completed chunk read back from a checkpoint journal.

    Duck-compatible with :class:`repro.feast.parallel.ChunkResult` where
    the engine needs it (``records``, ``timings``, ``failures``,
    ``n_trials``).
    """

    scenario: str
    index: int
    records: Dict[Tuple[int, str], TrialRecord]
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    failures: List[TrialFailure] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.records)


def _decode_chunk_line(
    data: Dict[str, Any], path: str, lineno: int
) -> ReplayedChunk:
    """Decode one journal chunk line (shared by replay and streaming)."""
    try:
        if data.get("kind") != "chunk":
            raise KeyError("kind")
        return ReplayedChunk(
            scenario=str(data["scenario"]),
            index=int(data["index"]),
            records={
                (int(e["size"]), str(e["method"])): TrialRecord(
                    **e["record"]
                )
                for e in data["records"]
            },
            timings=PhaseTimings(
                **{k: float(v) for k, v in data["timings"].items()}
            ),
            failures=[
                TrialFailure(**f) for f in data.get("failures", [])
            ],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"malformed chunk on checkpoint line {lineno} in "
            f"{path!r}: {exc}"
        ) from exc


class CheckpointJournal:
    """Append-only journal of completed trial chunks.

    Line 1 is a header (format, version, config fingerprint); every
    further line is one completed chunk's records, timings, and non-fatal
    failure events. Each append is **one** ``write(2)`` on an
    ``O_APPEND`` descriptor followed by an ``fsync``: the kernel serializes
    O_APPEND writes, so concurrent shard workers appending to *separate*
    journals (or a crashed-and-relaunched worker reopening its own) can
    never interleave partial records, and after a crash the journal holds
    every chunk whose append returned — at worst plus one torn trailing
    line (a write cut short mid-syscall by the kill), which
    :meth:`_open_existing` repairs (the interrupted chunk is simply
    re-run).
    """

    def __init__(self, path: str, config: ExperimentConfig) -> None:
        self.path = os.path.abspath(path)
        self.fingerprint = config_fingerprint(config)
        self.experiment = config.name
        #: Chunks recovered from an existing journal, keyed by
        #: (scenario, graph index).
        self.replayed: Dict[Tuple[str, int], ReplayedChunk] = {}
        self._fd: Optional[int] = None
        try:
            exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        except OSError as exc:
            raise CheckpointError(
                f"cannot stat checkpoint {self.path!r}: {exc}"
            ) from exc
        if exists:
            self._fd = self._open_existing()
        else:
            self._fd = self._create()

    # ------------------------------------------------------------------
    def _header_line(self) -> str:
        return json.dumps(
            {
                "format": CHECKPOINT_FORMAT,
                "version": CHECKPOINT_VERSION,
                "fingerprint": self.fingerprint,
                "experiment": self.experiment,
            },
            sort_keys=True,
        )

    def _create(self) -> int:
        directory = os.path.dirname(self.path) or "."
        if not os.path.isdir(directory):
            raise CheckpointError(
                f"checkpoint directory does not exist: {directory!r}"
            )
        try:
            fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint {self.path!r}: {exc}"
            ) from exc
        self._write_line(fd, self._header_line())
        # Appends fsync the file; creation must also fsync the parent
        # directory, or a crash right after shard spawn could lose the
        # journal's directory entry despite the synced header.
        fsync_directory(directory)
        return fd

    def _open_existing(self) -> int:
        try:
            with open(self.path) as fp:
                text = fp.read()
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {self.path!r}: {exc}"
            ) from exc
        lines = text.splitlines()
        try:
            header = json.loads(lines[0])
        except (json.JSONDecodeError, IndexError) as exc:
            raise CheckpointError(
                f"{self.path!r} is not a checkpoint journal: bad header"
            ) from exc
        if (
            not isinstance(header, dict)
            or header.get("format") != CHECKPOINT_FORMAT
        ):
            raise CheckpointError(
                f"{self.path!r} is not a {CHECKPOINT_FORMAT} journal"
            )
        if header.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version "
                f"{header.get('version')!r} in {self.path!r}"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {self.path!r} was written by a different "
                f"experiment configuration (journal fingerprint "
                f"{header.get('fingerprint')!r}, this config "
                f"{self.fingerprint!r}); refusing to resume — delete the "
                "file or use a fresh checkpoint path"
            )
        truncated = False
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            last = lineno == len(lines)
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                if last and not text.endswith("\n"):
                    # A crash mid-append left a partial trailing line;
                    # drop it and re-run that chunk.
                    truncated = True
                    break
                raise CheckpointError(
                    f"corrupt checkpoint line {lineno} in {self.path!r}"
                ) from None
            self._replay_line(data, lineno)
        if truncated or (len(lines) > 0 and not text.endswith("\n")):
            warnings.warn(
                f"checkpoint {self.path!r} ends in a partial line "
                "(interrupted append); dropping it and re-running that "
                "chunk",
                ExperimentWarning,
                stacklevel=3,
            )
            sane = "\n".join(
                [lines[0]]
                + [ln for ln in lines[1:] if self._is_complete_line(ln)]
            ) + "\n"
            _atomic_write_text(self.path, sane)
        return os.open(self.path, os.O_WRONLY | os.O_APPEND)

    @staticmethod
    def _is_complete_line(line: str) -> bool:
        if not line.strip():
            return False
        try:
            json.loads(line)
        except json.JSONDecodeError:
            return False
        return True

    def _replay_line(self, data: Dict[str, Any], lineno: int) -> None:
        chunk = _decode_chunk_line(data, self.path, lineno)
        self.replayed[(chunk.scenario, chunk.index)] = chunk

    # ------------------------------------------------------------------
    @staticmethod
    def _write_line(fd: int, line: str) -> None:
        """One complete journal line: a single write(2), then fsync.

        ``os.write`` may legally write fewer bytes than asked; the loop
        covers that, and since the descriptor is O_APPEND, each raw
        write lands contiguously at end-of-file even so. A crash can
        therefore truncate at most the final record, never corrupt an
        earlier one.
        """
        payload = (line + "\n").encode("utf-8")
        view = memoryview(payload)
        while view:
            written = os.write(fd, view)
            view = view[written:]
        os.fsync(fd)

    def append(self, chunk) -> None:
        """Journal one completed chunk (single atomic append + fsync)."""
        if self._fd is None:
            raise CheckpointError(
                f"checkpoint {self.path!r} is closed"
            )
        data = {
            "kind": "chunk",
            "scenario": chunk.scenario,
            "index": chunk.index,
            "records": [
                {"size": size, "method": method, "record": record.as_dict()}
                for (size, method), record in chunk.records.items()
            ],
            "timings": chunk.timings.as_dict(),
            "failures": [f.as_dict() for f in chunk.failures],
        }
        self._write_line(self._fd, json.dumps(data, sort_keys=True))

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Journal reading, inspection, and compaction (the shard-merge and
# `repro checkpoint` toolbox)
# ----------------------------------------------------------------------
def read_journal_header(path: str) -> Dict[str, Any]:
    """The validated header (format/version/fingerprint/experiment)."""
    try:
        with open(path) as fp:
            first = fp.readline()
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path!r}: {exc}"
        ) from exc
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"{path!r} is not a checkpoint journal: bad header"
        ) from exc
    if not isinstance(header, dict) or header.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(f"{path!r} is not a {CHECKPOINT_FORMAT} journal")
    if header.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {header.get('version')!r} "
            f"in {path!r}"
        )
    return header


def iter_journal(
    path: str, fingerprint: Optional[str] = None
) -> Iterator[Tuple[Tuple[str, int], ReplayedChunk]]:
    """Stream a journal's chunks one line at a time, bounded memory.

    Unlike opening a :class:`CheckpointJournal` (which materializes
    every replayed chunk, and opens the file for appending), this holds
    exactly one chunk in memory at a time — what the shard merge and
    streaming aggregation need to keep peak resident records bounded by
    chunk size. A torn trailing line (interrupted append) is silently
    skipped, mirroring the journal's own recovery; corruption anywhere
    else raises :class:`CheckpointError`. When ``fingerprint`` is given,
    a journal written by a different config is rejected up front.
    """
    header = read_journal_header(path)
    if fingerprint is not None and header.get("fingerprint") != fingerprint:
        raise CheckpointError(
            f"checkpoint {path!r} was written by a different experiment "
            f"configuration (journal fingerprint "
            f"{header.get('fingerprint')!r}, expected {fingerprint!r})"
        )
    with open(path) as fp:
        fp.readline()  # header, validated above
        lineno = 1
        while True:
            line = fp.readline()
            if not line:
                break
            lineno += 1
            if not line.strip():
                continue
            torn = not line.endswith("\n")
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                if torn:
                    break  # interrupted append; the chunk re-runs
                raise CheckpointError(
                    f"corrupt checkpoint line {lineno} in {path!r}"
                ) from None
            chunk = _decode_chunk_line(data, path, lineno)
            yield (chunk.scenario, chunk.index), chunk


@dataclass
class JournalInfo:
    """What :func:`inspect_journal` found in one journal file."""

    path: str
    fingerprint: str
    experiment: str
    #: Distinct chunk keys present, in file order.
    chunks: List[Tuple[str, int]] = field(default_factory=list)
    #: Keys journaled more than once (within this one file).
    duplicates: List[Tuple[str, int]] = field(default_factory=list)
    #: Whether the file ends in a torn (interrupted) append.
    torn_tail: bool = False

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)


def inspect_journal(path: str) -> JournalInfo:
    """Summarize one journal: identity, chunk coverage, anomalies.

    Read-only and line-streamed; malformed *complete* lines raise, a
    torn trailing line is reported on :attr:`JournalInfo.torn_tail`.
    """
    header = read_journal_header(path)
    info = JournalInfo(
        path=os.path.abspath(path),
        fingerprint=str(header.get("fingerprint")),
        experiment=str(header.get("experiment")),
    )
    seen = set()
    for key, _chunk in iter_journal(path):
        if key in seen:
            info.duplicates.append(key)
            continue
        seen.add(key)
        info.chunks.append(key)
    with open(path) as fp:
        text = fp.read()
    info.torn_tail = bool(text) and not text.endswith("\n")
    return info


def journal_paths(directory: str) -> List[str]:
    """The checkpoint journal files inside ``directory``, sorted."""
    try:
        names = sorted(os.listdir(directory))
    except OSError as exc:
        raise CheckpointError(
            f"cannot list journal directory {directory!r}: {exc}"
        ) from exc
    return [
        os.path.join(directory, name)
        for name in names
        if name.endswith(".ckpt")
    ]


def compact_journals(directory: str) -> str:
    """Merge every journal in ``directory`` into one deduplicated file.

    The merged journal is written atomically as ``shard-0-of-1.ckpt``
    (so both a ``--shards 1`` resume and a serial/pool resume pointed at
    the file pick it up), chunks in canonical first-seen order, then the
    source journals are removed. Identical duplicate chunks collapse;
    conflicting duplicates (same key, different records) raise
    :class:`CheckpointError` — compaction never guesses which side is
    right. Returns the merged journal's path.
    """
    paths = journal_paths(directory)
    if not paths:
        raise CheckpointError(
            f"no checkpoint journals (*.ckpt) in {directory!r}"
        )
    fingerprint: Optional[str] = None
    header_line: Optional[str] = None
    lines: List[str] = []
    seen: Dict[Tuple[str, int], str] = {}
    for path in paths:
        header = read_journal_header(path)
        if fingerprint is None:
            fingerprint = header.get("fingerprint")
            header_line = json.dumps(header, sort_keys=True)
        elif header.get("fingerprint") != fingerprint:
            raise CheckpointError(
                f"journal {path!r} has fingerprint "
                f"{header.get('fingerprint')!r} but {paths[0]!r} has "
                f"{fingerprint!r}; refusing to compact a mixed directory"
            )
        with open(path) as fp:
            fp.readline()
            for raw in fp:
                if not raw.strip() or not raw.endswith("\n"):
                    continue
                try:
                    data = json.loads(raw)
                except json.JSONDecodeError:
                    raise CheckpointError(
                        f"corrupt checkpoint line in {path!r}"
                    ) from None
                key = (str(data.get("scenario")), int(data.get("index", -1)))
                canon = json.dumps(data, sort_keys=True)
                if key in seen:
                    if seen[key] != canon:
                        raise CheckpointError(
                            f"conflicting duplicate chunk (scenario="
                            f"{key[0]}, graph={key[1]}) across journals in "
                            f"{directory!r}; refusing to compact"
                        )
                    continue
                seen[key] = canon
                lines.append(canon)
    merged = os.path.join(directory, "shard-0-of-1.ckpt")
    _atomic_write_text(
        merged, "\n".join([header_line] + lines) + "\n"
    )
    for path in paths:
        if os.path.abspath(path) != os.path.abspath(merged):
            os.remove(path)
    return merged


@dataclass(frozen=True)
class SeriesDelta:
    """Change of one (scenario, method, size) mean between two runs."""

    scenario: str
    method: str
    n_processors: int
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def relative(self) -> float:
        return self.delta / abs(self.before) if self.before else float("inf")


def compare(
    before: ExperimentResult,
    after: ExperimentResult,
    threshold: float = 0.0,
) -> List[SeriesDelta]:
    """Per-point differences of mean max lateness between two runs.

    Returns the points present in both runs whose absolute change exceeds
    ``threshold``, worst regressions (most positive delta) first.
    """
    means_before = mean_max_lateness(before.records)
    means_after = mean_max_lateness(after.records)
    deltas = [
        SeriesDelta(
            scenario=key[0],
            method=key[1],
            n_processors=key[2],
            before=means_before[key],
            after=means_after[key],
        )
        for key in means_before
        if key in means_after
    ]
    return sorted(
        (d for d in deltas if abs(d.delta) > threshold),
        key=lambda d: -d.delta,
    )
