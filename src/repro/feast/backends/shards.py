"""Multi-process shard execution coordinated through journal files.

The :class:`SubprocessBackend` is the relaxed-locality execution story:
instead of sharing a pool inside one interpreter, the sweep is split
into ``shards`` disjoint partitions, each executed by an independent
``repro`` worker subprocess (:mod:`.shardworker`) that talks to the
parent through the filesystem only — one config-fingerprinted
checkpoint journal per shard. Nothing but the tiny pickled payload
crosses a pipe, so the same protocol works unchanged when the "shards"
are later dispatched to different hosts sharing a filesystem: the
journal directory is the coordination medium.

Shard-merge protocol
--------------------
* Partition: shard ``i`` of ``n`` owns the chunks whose ordinal in the
  canonical ``config.chunk_keys()`` ordering is ``≡ i (mod n)`` —
  computed independently (and identically) by parent and workers.
* Each shard appends completed chunks to ``shard-i-of-n.ckpt`` in the
  journal directory and finally writes an atomic JSON summary (fault
  accounting + serialized telemetry).
* A shard that exits nonzero is relaunched (its journal makes the
  relaunch incremental) up to ``RetryPolicy.max_attempts`` launches;
  a shard that keeps dying is finished *in-process* by the parent,
  against the same journal, and the run is marked degraded.
* The parent then streams every shard journal, rejects conflicting
  duplicate chunks (identical duplicates are tolerated — e.g. after a
  re-partitioned resume), folds telemetry under the single run span,
  and hands the union to canonical assembly — byte-identical records
  to a serial run, for any shard count.

Resuming a sharded sweep reuses the directory: pass the same
``checkpoint`` and shard count. (A directory journaled under a
different shard count is still *correct* to resume — fingerprints
guard identity, duplicates merge — but chunks recorded in the old
partition's files are re-run, since each worker replays only its own
journal.)
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import time
import warnings
from typing import Dict, List, Optional

from repro.errors import CheckpointError, ExperimentError, ExperimentWarning
from repro.feast.backends.base import (
    BackendOutcome,
    ChunkDriver,
    ExecutionBackend,
    ExecutionRequest,
)
from repro.feast.backends.work import ChunkKey, is_parallelizable
from repro.feast.backends.shardworker import shard_keys
from repro.obs.metrics import MetricsRegistry
from repro.obs.resources import ResourceSample
from repro.obs.spans import Span

#: Seconds between child-process liveness polls.
_POLL_INTERVAL = 0.05


def _shard_stem(shard: int, n_shards: int) -> str:
    return f"shard-{shard}-of-{n_shards}"


def _chunk_digest(chunk) -> str:
    """Content hash of a chunk's records, for duplicate arbitration."""
    blob = json.dumps(
        sorted(
            [size, method, record.as_dict()]
            for (size, method), record in chunk.records.items()
        ),
        sort_keys=True,
    )
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()


def _worker_env() -> Dict[str, str]:
    """The child environment: inherit everything, ensure ``repro`` is
    importable (fault-injection plans etc. ride along automatically)."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing
        else src_dir + os.pathsep + existing
    )
    return env


def _log_tail(path: str, lines: int = 5) -> str:
    try:
        with open(path) as fp:
            tail = fp.read().splitlines()[-lines:]
    except OSError:
        return ""
    return "\n".join(tail)


class SubprocessBackend(ExecutionBackend):
    """Disjoint shards executed by independent worker subprocesses."""

    name = "subprocess"

    def prepare(self, request: ExecutionRequest) -> None:
        if request.shards < 1:
            raise ExperimentError(
                f"shards must be >= 1, got {request.shards}"
            )
        if not is_parallelizable(request.config):
            raise ExperimentError(
                f"experiment {request.config.name!r} carries an unpicklable "
                "graph_factory; run it with jobs=1"
            )
        if request.checkpoint is not None and os.path.isfile(request.checkpoint):
            raise CheckpointError(
                f"the subprocess backend checkpoints into a journal "
                f"*directory*, but {request.checkpoint!r} is a file "
                "(a single-file journal from a serial/pool run?)"
            )

    def run(self, request: ExecutionRequest) -> BackendOutcome:
        from repro.feast.persistence import config_fingerprint, iter_journal

        config = request.config
        inst = request.instrumentation
        n_shards = request.shards
        fingerprint = config_fingerprint(config)

        directory = request.checkpoint
        ephemeral = directory is None
        if ephemeral:
            directory = tempfile.mkdtemp(prefix="repro-shards-")
        else:
            os.makedirs(directory, exist_ok=True)

        journals = [
            os.path.join(directory, _shard_stem(i, n_shards) + ".ckpt")
            for i in range(n_shards)
        ]
        summaries = [
            os.path.join(directory, _shard_stem(i, n_shards) + ".summary.json")
            for i in range(n_shards)
        ]
        logs = [
            os.path.join(directory, _shard_stem(i, n_shards) + ".log")
            for i in range(n_shards)
        ]

        # Chunks already journaled before this run started count as
        # replayed, not completed, in the progress accounting.
        pre_existing = set()
        for path in journals:
            if os.path.exists(path):
                for key, _ in iter_journal(path, fingerprint=fingerprint):
                    pre_existing.add(key)

        payload_paths: List[str] = []
        for i in range(n_shards):
            payload = {
                "config": config,
                "shard": i,
                "n_shards": n_shards,
                "journal": journals[i],
                "summary": summaries[i],
                "policy": request.policy,
                "trace": request.trace,
            }
            path = os.path.join(
                directory, _shard_stem(i, n_shards) + ".payload.pkl"
            )
            with open(path, "wb") as fp:
                pickle.dump(payload, fp)
            payload_paths.append(path)

        fallback: List[int] = self._drive_workers(
            request, payload_paths, logs
        )

        outcome = BackendOutcome()
        seen: Dict[ChunkKey, str] = {}

        def merge_chunk(key: ChunkKey, chunk) -> None:
            digest = _chunk_digest(chunk)
            if key in seen:
                if seen[key] != digest:
                    raise ExperimentError(
                        f"conflicting duplicate chunk (scenario={key[0]}, "
                        f"graph={key[1]}) across shard journals in "
                        f"{directory!r} — records differ; refusing to merge"
                    )
                return
            seen[key] = digest
            if request.on_chunk is not None:
                request.on_chunk(key, chunk)
                outcome.streamed_trials += chunk.n_trials
            outcome.chunks[key] = chunk if request.keep_records else None
            if key in pre_existing:
                inst.replayed(chunk.timings, chunk.n_trials)
            else:
                inst.absorb(chunk.timings, chunk.n_trials)

        for i in range(n_shards):
            if i in fallback:
                self._finish_in_process(
                    request, i, n_shards, journals[i], outcome, seen,
                )
                continue
            for key, chunk in iter_journal(
                journals[i], fingerprint=fingerprint
            ):
                merge_chunk(key, chunk)
            self._merge_summary(request, summaries[i], outcome)

        if fallback:
            outcome.degraded_reason = (
                f"shard(s) {sorted(fallback)} kept failing after "
                f"{request.policy.max_attempts} launch(es); their "
                "remaining chunks ran in-process in the parent"
            )
        if ephemeral:
            shutil.rmtree(directory, ignore_errors=True)
        return outcome

    # ------------------------------------------------------------------
    def _drive_workers(
        self,
        request: ExecutionRequest,
        payload_paths: List[str],
        logs: List[str],
    ) -> List[int]:
        """Launch all shards; relaunch failures. Returns given-up shards."""
        env = _worker_env()
        launches = {i: 0 for i in range(len(payload_paths))}
        fallback: List[int] = []

        def launch(i: int) -> subprocess.Popen:
            launches[i] += 1
            log = open(logs[i], "a")
            try:
                return subprocess.Popen(
                    [
                        sys.executable, "-m",
                        "repro.feast.backends.shardworker",
                        payload_paths[i],
                    ],
                    stdout=log,
                    stderr=subprocess.STDOUT,
                    env=env,
                )
            finally:
                log.close()

        running = {i: launch(i) for i in range(len(payload_paths))}
        while running:
            finished = [
                (i, proc) for i, proc in running.items()
                if proc.poll() is not None
            ]
            if not finished:
                time.sleep(_POLL_INTERVAL)
                continue
            for i, proc in finished:
                del running[i]
                if proc.returncode == 0:
                    continue
                if launches[i] >= request.policy.max_attempts:
                    warnings.warn(
                        f"shard {i} exited with code {proc.returncode} on "
                        f"launch {launches[i]}/"
                        f"{request.policy.max_attempts}; giving up on the "
                        f"subprocess and finishing it in-process. Last "
                        f"output:\n{_log_tail(logs[i])}",
                        ExperimentWarning,
                        stacklevel=4,
                    )
                    fallback.append(i)
                    continue
                warnings.warn(
                    f"shard {i} exited with code {proc.returncode}; "
                    f"relaunching (launch {launches[i] + 1}/"
                    f"{request.policy.max_attempts}) — its journal makes "
                    "the relaunch incremental",
                    ExperimentWarning,
                    stacklevel=4,
                )
                running[i] = launch(i)
        return fallback

    def _finish_in_process(
        self,
        request: ExecutionRequest,
        shard: int,
        n_shards: int,
        journal_path: str,
        outcome: BackendOutcome,
        seen: Dict[ChunkKey, str],
    ) -> None:
        """Degraded path: the parent completes one shard itself.

        The shard's journal is reused, so chunks its worker did manage
        to complete are replayed, not re-run.
        """
        from repro.feast.persistence import CheckpointJournal

        journal = CheckpointJournal(journal_path, request.config)
        driver = ChunkDriver(
            request.config,
            request.instrumentation,
            request.policy,
            journal=journal,
            keys=shard_keys(request.config, shard, n_shards),
            on_chunk=request.on_chunk,
            keep_records=request.keep_records,
        )
        try:
            driver.run_in_process()
        finally:
            journal.close()
        sub = driver.outcome()
        for key, chunk in sub.chunks.items():
            seen[key] = "" if chunk is None else _chunk_digest(chunk)
            outcome.chunks[key] = chunk
        outcome.quarantined.update(sub.quarantined)
        outcome.failures.extend(sub.failures)
        outcome.streamed_trials += sub.streamed_trials

    def _merge_summary(
        self,
        request: ExecutionRequest,
        summary_path: str,
        outcome: BackendOutcome,
    ) -> None:
        """Fold one worker's summary: faults + telemetry."""
        from repro.feast.instrumentation import TrialFailure

        try:
            with open(summary_path) as fp:
                summary = json.load(fp)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"shard summary {summary_path!r} is missing or corrupt "
                f"({exc}) although its worker exited cleanly"
            ) from exc
        outcome.failures.extend(
            TrialFailure(**f) for f in summary.get("failures", [])
        )
        for scenario, index, reason in summary.get("quarantined", []):
            outcome.quarantined[(str(scenario), int(index))] = str(reason)
        telemetry = summary.get("telemetry")
        if telemetry is not None and request.instrumentation.telemetry is not None:
            request.instrumentation.telemetry.adopt_chunk(
                spans=[Span.from_dict(s) for s in telemetry.get("spans", [])],
                metrics=MetricsRegistry.from_dict(
                    telemetry.get("metrics", {})
                ),
                resources=[
                    ResourceSample.from_dict(r)
                    for r in telemetry.get("resources", [])
                ],
            )
