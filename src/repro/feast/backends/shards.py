"""Multi-process shard execution coordinated through journal files.

The :class:`SubprocessBackend` is the relaxed-locality execution story:
instead of sharing a pool inside one interpreter, the sweep is split
into ``shards`` disjoint partitions, each executed by an independent
``repro`` worker subprocess (:mod:`.shardworker`) that talks to the
parent through the filesystem only — one config-fingerprinted
checkpoint journal per shard. Nothing but the tiny pickled payload
crosses a pipe, so the same protocol works unchanged when the "shards"
are later dispatched to different hosts sharing a filesystem: the
journal directory is the coordination medium.

Liveness supervision
--------------------
``proc.poll()`` only detects shards that *die*; a shard that wedges —
a livelocked solver, a hung filesystem, an injected ``hang`` fault —
would block the run forever. The supervisor therefore uses the journal
itself as a heartbeat: a healthy shard appends a chunk line every few
seconds, so the parent tracks each journal's size (and record count)
and declares a shard *stalled* when it grows by nothing for
``RetryPolicy.stall_timeout`` seconds. Escalation is the classic
ladder: SIGTERM, a ``stall_grace`` period for a clean death, then
SIGKILL for workers that ignore the term (the journal makes any death
point safe — at most the in-flight chunk is lost). Stall detection is
opt-in (``stall_timeout=None`` default) because a legitimately long
chunk produces no journal growth while it computes; enable it when
chunk durations are known to be bounded.

Shard-merge protocol
--------------------
* Partition: shard ``i`` of ``n`` owns the chunks whose ordinal in the
  canonical ``config.chunk_keys()`` ordering is ``≡ i (mod n)`` —
  computed independently (and identically) by parent and workers.
* Each shard appends completed chunks to ``shard-i-of-n.ckpt`` in the
  journal directory and finally writes an atomic JSON summary (fault
  accounting + serialized telemetry).
* A shard that exits nonzero is relaunched (its journal makes the
  relaunch incremental) after a deterministic, jittered backoff —
  decorrelated per shard, so a fleet killed at once doesn't thunder
  back against the shared journal directory in lockstep — up to
  ``RetryPolicy.max_attempts`` launches.
* **Failover**: a shard that exhausts its launch cap has its *remaining*
  chunk keys (owned minus journaled) repartitioned round-robin across
  as many fresh *failover workers* as there are surviving shards, each
  journaling to ``failover-<shard>-<j>.ckpt`` in the same directory.
  Failover workers are supervised like any shard but are not themselves
  failed over.
* The parent then merges **every** ``*.ckpt`` journal in the directory
  (shards, failovers, the parent's own sweep journal, and files from an
  earlier partitioning — fingerprints guard config identity), rejects
  conflicting duplicate chunks (identical duplicates are tolerated and
  expected: determinism makes re-executions byte-equal), folds worker
  telemetry under the single run span, and hands the union to canonical
  assembly — byte-identical records to a serial run, for any shard
  count and any fault history.
* Whatever is *still* missing — e.g. every failover path also died —
  runs in-process in the parent against ``parent.ckpt``, so the run
  terminates with every chunk done-or-quarantined no matter what the
  fleet did.

Resuming a sharded sweep reuses the directory: pass the same
``checkpoint``. A directory journaled under a different shard count
also resumes: the merge reads all journals, so previously completed
chunks are replayed (workers still re-execute chunks absent from their
own journal; the digest dedupe arbitrates the resulting duplicates).

Everything the supervisor observes — stalls, kill escalations,
relaunches, failovers, reassigned and replayed chunks — is accounted in
:class:`~.base.SupervisionStats` on the outcome, surfaced as
``supervision.*`` obs counters and in the CLI fault report.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import CheckpointError, ExperimentError, ExperimentWarning
from repro.feast.backends.base import (
    BackendOutcome,
    ChunkDriver,
    ExecutionBackend,
    ExecutionRequest,
    SupervisionStats,
)
from repro.feast.backends.work import ChunkKey, is_parallelizable
from repro.feast.backends.shardworker import shard_keys
from repro.obs import live as obs_live
from repro.obs.metrics import MetricsRegistry
from repro.obs.resources import ResourceSample
from repro.obs.spans import Span

#: Seconds between child-process liveness polls.
_POLL_INTERVAL = 0.05

#: Extra no-progress allowance before a launch's *first* journal growth.
#: Worker cold-start (interpreter boot, imports, journal replay) must
#: not count against the stall deadline, or a loaded host kill-storms
#: healthy workers before they ever open their journal — the liveness
#: probe only arms once the startup probe has passed.
_STARTUP_ALLOWANCE = 10.0

#: Journal the parent's terminal in-process sweep appends to.
_PARENT_JOURNAL = "parent.ckpt"


def _shard_stem(shard: int, n_shards: int) -> str:
    return f"shard-{shard}-of-{n_shards}"


def _chunk_digest(chunk) -> str:
    """Content hash of a chunk's records, for duplicate arbitration."""
    blob = json.dumps(
        sorted(
            [size, method, record.as_dict()]
            for (size, method), record in chunk.records.items()
        ),
        sort_keys=True,
    )
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()


def _worker_env() -> Dict[str, str]:
    """The child environment: inherit everything, ensure ``repro`` is
    importable (fault-injection plans etc. ride along automatically)."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing
        else src_dir + os.pathsep + existing
    )
    return env


def _log_tail(path: str, lines: int = 5) -> str:
    try:
        with open(path) as fp:
            tail = fp.read().splitlines()[-lines:]
    except OSError:
        return ""
    return "\n".join(tail)


@dataclass
class _Slot:
    """One supervised worker: an original shard or a failover worker."""

    ident: str
    #: Shard index for originals; ``-1`` for failover workers.
    shard: int
    #: The chunk keys this worker owns.
    keys: List[ChunkKey]
    journal: str
    summary: str
    log: str
    payload: str
    #: Whether this is an original shard (failover slots are not
    #: themselves failed over — the parent sweep is their safety net).
    original: bool = True
    launches: int = 0
    proc: Optional[subprocess.Popen] = None
    #: Monotonic time before which a (re)launch must not happen.
    eligible_at: float = 0.0
    #: Journal-heartbeat state: last observed size / records, and when
    #: the journal last grew.
    bytes_seen: int = 0
    records_seen: int = 0
    last_progress: float = 0.0
    #: Whether this launch has produced any journal activity yet; until
    #: it has, the stall deadline is widened by ``_STARTUP_ALLOWANCE``.
    saw_progress: bool = False
    #: When the SIGKILL escalation fires, if a stall SIGTERM was sent.
    term_at: Optional[float] = None
    done: bool = False
    gave_up: bool = False


class _Fleet:
    """Supervises a set of worker slots to completion-or-give-up.

    Runs the poll loop: launch eligible slots, reap exits (relaunch
    with jittered backoff, or give up and fail over), and watch journal
    heartbeats for stalls (SIGTERM → grace → SIGKILL). Collects
    :class:`SupervisionStats` as it goes.
    """

    def __init__(self, request: ExecutionRequest, directory: str) -> None:
        self.request = request
        self.directory = directory
        self.env = _worker_env()
        self.slots: List[_Slot] = []
        self.stats = SupervisionStats()

    def add_slot(
        self,
        ident: str,
        shard: int,
        keys: List[ChunkKey],
        original: bool,
        explicit_keys: bool,
    ) -> _Slot:
        slot = _Slot(
            ident=ident,
            shard=shard,
            keys=keys,
            journal=os.path.join(self.directory, ident + ".ckpt"),
            summary=os.path.join(self.directory, ident + ".summary.json"),
            log=os.path.join(self.directory, ident + ".log"),
            payload=os.path.join(self.directory, ident + ".payload.pkl"),
            original=original,
        )
        payload = {
            "config": self.request.config,
            "shard": shard,
            "n_shards": self.request.shards,
            "journal": slot.journal,
            "summary": slot.summary,
            "policy": self.request.policy,
            "trace": self.request.trace,
            # Failover workers get an explicit key list; originals
            # derive their partition from (shard, n_shards) so the
            # payload stays oblivious to this run's fault history.
            "keys": keys if explicit_keys else None,
        }
        with open(slot.payload, "wb") as fp:
            pickle.dump(payload, fp)
        self.slots.append(slot)
        return slot

    # -- lifecycle -----------------------------------------------------
    def _launch(self, slot: _Slot) -> None:
        slot.launches += 1
        log = open(slot.log, "a")
        try:
            slot.proc = subprocess.Popen(
                [
                    sys.executable, "-m",
                    "repro.feast.backends.shardworker",
                    slot.payload,
                ],
                stdout=log,
                stderr=subprocess.STDOUT,
                env=self.env,
            )
        finally:
            log.close()
        # Heartbeat baseline: progress means growth beyond what the
        # journal already holds (relaunches start with a full journal).
        slot.bytes_seen = self._journal_size(slot)
        slot.last_progress = time.monotonic()
        slot.saw_progress = False
        slot.term_at = None

    @staticmethod
    def _journal_size(slot: _Slot) -> int:
        try:
            return os.path.getsize(slot.journal)
        except OSError:
            return 0

    def _probe(self) -> Dict[str, object]:
        """Live per-slot rows for the status sampler (observation only).

        Called from the sampler thread, so it iterates over a snapshot
        copy of the slot list and performs plain attribute reads.
        """
        now = time.monotonic()
        rows = []
        for slot in list(self.slots):
            if slot.done:
                state = "done"
            elif slot.gave_up:
                state = "gave-up"
            elif slot.proc is None:
                state = "waiting"
            elif slot.term_at is not None:
                state = "term-pending"
            else:
                state = "running"
            proc = slot.proc
            rows.append({
                "ident": slot.ident,
                "shard": slot.shard,
                "state": state,
                "pid": proc.pid if proc is not None else None,
                "launches": slot.launches,
                "records_seen": slot.records_seen,
                "heartbeat_age": (
                    round(now - slot.last_progress, 3)
                    if state in ("running", "term-pending") else None
                ),
            })
        return {"slots": rows}

    def drive(self) -> None:
        """Poll until every slot is done or given up."""
        with obs_live.probe("fleet", self._probe):
            self._drive()

    def _drive(self) -> None:
        while True:
            live = [s for s in self.slots if not (s.done or s.gave_up)]
            if not live:
                return
            now = time.monotonic()
            progressed = False
            for slot in live:
                if slot.proc is None:
                    if now >= slot.eligible_at:
                        self._launch(slot)
                        progressed = True
                    continue
                rc = slot.proc.poll()
                if rc is not None:
                    self._reap(slot, rc)
                    progressed = True
                else:
                    self._check_liveness(slot, now)
            if not progressed:
                time.sleep(_POLL_INTERVAL)

    def _check_liveness(self, slot: _Slot, now: float) -> None:
        """Journal-growth heartbeat + the SIGTERM→grace→SIGKILL ladder."""
        policy = self.request.policy
        if policy.stall_timeout is None:
            return
        size = self._journal_size(slot)
        if size != slot.bytes_seen:
            if size > slot.bytes_seen:
                # Appends are whole lines, so counting newlines in the
                # grown region tracks the record heartbeat exactly.
                try:
                    with open(slot.journal, "rb") as fp:
                        fp.seek(slot.bytes_seen)
                        slot.records_seen += fp.read(
                            size - slot.bytes_seen
                        ).count(b"\n")
                except OSError:
                    pass
            # A shrink is torn-tail repair on reopen — also liveness.
            slot.bytes_seen = size
            slot.last_progress = now
            slot.saw_progress = True
            # Chunks complete inside the shard worker (no status stream
            # there), so journal growth is the parent's progress signal.
            obs_live.publish(
                "progress",
                shard=slot.shard,
                ident=slot.ident,
                chunks_journaled=slot.records_seen,
            )
            return
        if slot.term_at is not None:
            if now >= slot.term_at:
                slot.proc.kill()
                self.stats.kills_escalated += 1
                obs_live.publish(
                    "supervision", event="kill-escalated", ident=slot.ident,
                    detail=f"SIGTERM ignored for {policy.stall_grace:g}s",
                )
                warnings.warn(
                    f"{slot.ident} ignored SIGTERM for "
                    f"{policy.stall_grace:g}s after stalling; escalating "
                    "to SIGKILL",
                    ExperimentWarning,
                    stacklevel=6,
                )
                slot.term_at = None  # the kill is final; just reap it
            return
        deadline = policy.stall_timeout
        if not slot.saw_progress:
            deadline += _STARTUP_ALLOWANCE
        if now - slot.last_progress >= deadline:
            self.stats.stalls_detected += 1
            obs_live.publish(
                "supervision", event="stall-detected", ident=slot.ident,
                detail=(
                    f"no journal progress for {deadline:g}s "
                    f"({slot.records_seen} chunk(s) this launch)"
                ),
            )
            warnings.warn(
                f"{slot.ident} stalled: no journal progress for "
                f"{deadline:g}s "
                f"({slot.records_seen} chunk(s) journaled this launch); "
                f"sending SIGTERM with {policy.stall_grace:g}s grace",
                ExperimentWarning,
                stacklevel=6,
            )
            slot.proc.terminate()
            slot.term_at = now + policy.stall_grace

    def _reap(self, slot: _Slot, returncode: int) -> None:
        slot.proc = None
        if returncode == 0:
            slot.done = True
            # Without a stall policy the journal is never polled, so a
            # clean exit is the one unconditional progress signal the
            # parent sees per shard.
            obs_live.publish(
                "progress",
                shard=slot.shard,
                ident=slot.ident,
                done_shards=sum(1 for s in self.slots if s.done),
            )
            return
        policy = self.request.policy
        if slot.launches >= policy.max_attempts:
            slot.gave_up = True
            obs_live.publish(
                "supervision", event="gave-up", ident=slot.ident,
                detail=(
                    f"exit {returncode} on launch "
                    f"{slot.launches}/{policy.max_attempts}"
                ),
            )
            warnings.warn(
                f"{slot.ident} exited with code {returncode} on launch "
                f"{slot.launches}/{policy.max_attempts}; giving up on the "
                f"worker. Last output:\n{_log_tail(slot.log)}",
                ExperimentWarning,
                stacklevel=6,
            )
            self._fail_over(slot)
            return
        delay = policy.backoff_jittered(
            slot.launches, self.request.config.seed, slot.ident
        )
        slot.eligible_at = time.monotonic() + delay
        self.stats.relaunches += 1
        obs_live.publish(
            "supervision", event="relaunch", ident=slot.ident,
            detail=(
                f"exit {returncode}; relaunching in {delay:.2f}s "
                f"(launch {slot.launches + 1}/{policy.max_attempts})"
            ),
        )
        warnings.warn(
            f"{slot.ident} exited with code {returncode}; "
            f"relaunching in {delay:.2f}s (launch {slot.launches + 1}/"
            f"{policy.max_attempts}) — its journal makes "
            "the relaunch incremental",
            ExperimentWarning,
            stacklevel=6,
        )

    def _fail_over(self, slot: _Slot) -> None:
        """Repartition a dead shard's remaining keys across survivors.

        Spawns one failover worker per surviving original shard (they
        model the capacity still standing), each owning a round-robin
        slice of the dead shard's un-journaled keys and journaling into
        the same directory. Failover workers that give up are not
        failed over again — the parent's terminal sweep catches
        whatever remains.
        """
        from repro.feast.persistence import config_fingerprint, iter_journal

        if not slot.original:
            return
        journaled: Set[ChunkKey] = set()
        if os.path.exists(slot.journal):
            fingerprint = config_fingerprint(self.request.config)
            journaled = {
                key for key, _ in iter_journal(
                    slot.journal, fingerprint=fingerprint
                )
            }
        remaining = [k for k in slot.keys if k not in journaled]
        survivors = [
            s for s in self.slots if s.original and not s.gave_up
        ]
        if not remaining or not survivors:
            return
        self.stats.shards_failed_over += 1
        self.stats.chunks_reassigned += len(remaining)
        obs_live.publish(
            "supervision", event="failover", ident=slot.ident,
            detail=(
                f"{len(remaining)} chunk(s) reassigned across "
                f"{len(survivors)} survivor(s)"
            ),
        )
        warnings.warn(
            f"failing over shard {slot.shard}: reassigning its "
            f"{len(remaining)} remaining chunk(s) across "
            f"{len(survivors)} surviving shard(s)",
            ExperimentWarning,
            stacklevel=7,
        )
        now = time.monotonic()
        for j in range(len(survivors)):
            keys = remaining[j::len(survivors)]
            if not keys:
                continue
            failover = self.add_slot(
                ident=f"failover-{slot.shard}-{j}",
                shard=-1,
                keys=keys,
                original=False,
                explicit_keys=True,
            )
            failover.eligible_at = now


class SubprocessBackend(ExecutionBackend):
    """Disjoint shards executed by independent worker subprocesses."""

    name = "subprocess"

    def prepare(self, request: ExecutionRequest) -> None:
        if request.shards < 1:
            raise ExperimentError(
                f"shards must be >= 1, got {request.shards}"
            )
        if not is_parallelizable(request.config):
            raise ExperimentError(
                f"experiment {request.config.name!r} carries an unpicklable "
                "graph_factory; run it with jobs=1"
            )
        if request.checkpoint is not None and os.path.isfile(request.checkpoint):
            raise CheckpointError(
                f"the subprocess backend checkpoints into a journal "
                f"*directory*, but {request.checkpoint!r} is a file "
                "(a single-file journal from a serial/pool run?)"
            )

    def run(self, request: ExecutionRequest) -> BackendOutcome:
        from repro.feast.persistence import (
            config_fingerprint,
            iter_journal,
            journal_paths,
        )

        config = request.config
        inst = request.instrumentation
        n_shards = request.shards
        fingerprint = config_fingerprint(config)

        directory = request.checkpoint
        ephemeral = directory is None
        if ephemeral:
            directory = tempfile.mkdtemp(prefix="repro-shards-")
        else:
            os.makedirs(directory, exist_ok=True)

        # Chunks already journaled before this run started count as
        # replayed, not completed, in the progress accounting; the
        # per-journal breakdown also calibrates each worker's own
        # replay count (see _merge_summary).
        pre_by_journal: Dict[str, Set[ChunkKey]] = {}
        pre_existing: Set[ChunkKey] = set()
        for path in journal_paths(directory):
            keys = {
                key for key, _ in iter_journal(path, fingerprint=fingerprint)
            }
            pre_by_journal[path] = keys
            pre_existing |= keys

        fleet = _Fleet(request, directory)
        for i in range(n_shards):
            fleet.add_slot(
                ident=_shard_stem(i, n_shards),
                shard=i,
                keys=shard_keys(config, i, n_shards),
                original=True,
                explicit_keys=False,
            )
        fleet.drive()

        outcome = BackendOutcome()
        outcome.supervision.merge(fleet.stats)
        seen: Dict[ChunkKey, str] = {}

        def merge_chunk(key: ChunkKey, chunk) -> None:
            digest = _chunk_digest(chunk)
            if key in seen:
                if seen[key] != digest:
                    raise ExperimentError(
                        f"conflicting duplicate chunk (scenario={key[0]}, "
                        f"graph={key[1]}) across shard journals in "
                        f"{directory!r} — records differ; refusing to merge"
                    )
                return
            seen[key] = digest
            if request.on_chunk is not None:
                request.on_chunk(key, chunk)
                outcome.streamed_trials += chunk.n_trials
            outcome.chunks[key] = chunk if request.keep_records else None
            if key in pre_existing:
                outcome.supervision.chunks_replayed += 1
                inst.replayed(chunk.timings, chunk.n_trials)
            else:
                inst.absorb(chunk.timings, chunk.n_trials)

        # Merge every journal in the directory: this run's shards and
        # failover workers, the parent sweep journal, and any files
        # from a previous partitioning of the same experiment.
        for path in journal_paths(directory):
            for key, chunk in iter_journal(path, fingerprint=fingerprint):
                merge_chunk(key, chunk)
        for slot in fleet.slots:
            if slot.done:
                self._merge_summary(
                    request, slot, pre_by_journal, outcome
                )

        gave_up = sorted(
            slot.ident for slot in fleet.slots if slot.gave_up
        )
        missing = [
            key for key in config.chunk_keys()
            if key not in seen and key not in outcome.quarantined
        ]
        if missing:
            self._finish_in_process(
                request, missing, directory, outcome, seen
            )
        if gave_up:
            outcome.degraded_reason = (
                f"worker(s) {gave_up} kept failing after "
                f"{request.policy.max_attempts} launch(es)"
                + (
                    f"; {len(missing)} chunk(s) ran in-process in the parent"
                    if missing else
                    "; failover workers completed their remaining chunks"
                )
            )
        if ephemeral:
            shutil.rmtree(directory, ignore_errors=True)
        return outcome

    # ------------------------------------------------------------------
    def _finish_in_process(
        self,
        request: ExecutionRequest,
        missing: List[ChunkKey],
        directory: str,
        outcome: BackendOutcome,
        seen: Dict[ChunkKey, str],
    ) -> None:
        """Terminal sweep: the parent completes whatever no worker did.

        Journals into ``parent.ckpt`` in the same directory, so even
        this degraded path is incremental across resumes. Restricted to
        the still-missing keys — chunks already merged from worker
        journals are never re-streamed or re-run.
        """
        from repro.feast.persistence import CheckpointJournal

        journal = CheckpointJournal(
            os.path.join(directory, _PARENT_JOURNAL), request.config
        )
        driver = ChunkDriver(
            request.config,
            request.instrumentation,
            request.policy,
            journal=journal,
            keys=missing,
            on_chunk=request.on_chunk,
            keep_records=request.keep_records,
        )
        try:
            driver.run_in_process()
        finally:
            journal.close()
        sub = driver.outcome()
        for key, chunk in sub.chunks.items():
            seen[key] = "" if chunk is None else _chunk_digest(chunk)
            outcome.chunks[key] = chunk
        outcome.quarantined.update(sub.quarantined)
        outcome.failures.extend(sub.failures)
        outcome.streamed_trials += sub.streamed_trials
        outcome.supervision.merge(sub.supervision)

    def _merge_summary(
        self,
        request: ExecutionRequest,
        slot: _Slot,
        pre_by_journal: Dict[str, Set[ChunkKey]],
        outcome: BackendOutcome,
    ) -> None:
        """Fold one worker's summary: faults, telemetry, replay count."""
        from repro.feast.instrumentation import TrialFailure

        try:
            with open(slot.summary) as fp:
                summary = json.load(fp)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"shard summary {slot.summary!r} is missing or corrupt "
                f"({exc}) although its worker exited cleanly"
            ) from exc
        outcome.failures.extend(
            TrialFailure(**f) for f in summary.get("failures", [])
        )
        for scenario, index, reason in summary.get("quarantined", []):
            outcome.quarantined[(str(scenario), int(index))] = str(reason)
        # Chunks the worker's final launch replayed from its own journal
        # beyond what predates this run = chunks recovered across
        # crash/relaunch boundaries *within* this run.
        replayed_chunks = (
            int(summary.get("replayed_trials", 0))
            // max(1, request.config.trials_per_graph)
        )
        pre_owned = len(pre_by_journal.get(slot.journal, ()))
        outcome.supervision.chunks_replayed += max(
            0, replayed_chunks - pre_owned
        )
        telemetry = summary.get("telemetry")
        if telemetry is not None and request.instrumentation.telemetry is not None:
            request.instrumentation.telemetry.adopt_chunk(
                spans=[Span.from_dict(s) for s in telemetry.get("spans", [])],
                metrics=MetricsRegistry.from_dict(
                    telemetry.get("metrics", {})
                ),
                resources=[
                    ResourceSample.from_dict(r)
                    for r in telemetry.get("resources", [])
                ],
            )
