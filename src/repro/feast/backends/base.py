"""The ExecutionBackend interface and the shared chunk driver.

An execution backend answers one question: *where do chunks run?* The
rest of the engine — the work-unit contract (:mod:`.work`), canonical
record assembly, retry/quarantine bookkeeping, checkpoint journaling,
telemetry adoption — is identical for every backend and lives here.

The contract
------------
A backend receives an :class:`ExecutionRequest` and must drive every
chunk of ``request.config.chunk_keys()`` to *done or quarantined*,
returning a :class:`BackendOutcome`. Guarantees a conforming backend
provides (and the cross-backend parity tests enforce):

* **Determinism** — a completed chunk's records depend only on
  (config, scenario, index), never on the backend, worker count, shard
  count, or arrival order. Backends get this for free by executing
  chunks through :func:`.work.run_chunk`, whose seeding contract
  regenerates identical graphs in any process.
* **Canonical assembly** — :func:`assemble_records` reorders completed
  chunks into the serial record order (scenario → size → method →
  index), so ``run_experiment`` output is byte-identical across
  backends.
* **Fault accounting** — failures consume attempts per
  :class:`.work.RetryPolicy`; chunks that exhaust attempts (or fail
  identically on consecutive attempts) are quarantined, never silently
  dropped: their keys appear in ``outcome.quarantined``.
* **Streaming** — when ``request.on_chunk`` is set, every completed
  chunk (including journal-replayed ones) is handed to it exactly once,
  as it completes; with ``keep_records=False`` the driver then drops
  the records, so peak resident records stay bounded by chunk size.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, List, Optional, Tuple

from repro.errors import ExperimentError
from repro.obs import live
from repro.feast.config import ExperimentConfig
from repro.feast.instrumentation import Instrumentation, TrialFailure
from repro.feast.runner import TrialRecord
from repro.feast.backends.work import (
    ChunkKey,
    RetryPolicy,
    TrialSpec,
    execute_chunk,
)

#: Streaming hook: called once per completed chunk, in completion order.
ChunkSink = Callable[[ChunkKey, object], None]


@dataclass
class ExecutionRequest:
    """Everything a backend needs to execute one experiment."""

    config: ExperimentConfig
    instrumentation: Instrumentation
    policy: RetryPolicy
    #: Checkpoint location: a journal *file* for serial/pool backends, a
    #: journal *directory* for the subprocess shard backend; ``None``
    #: disables checkpointing (the shard backend then manages a
    #: temporary directory itself).
    checkpoint: Optional[str] = None
    #: Worker processes (pool backend) — already resolved (>= 1).
    jobs: int = 1
    #: Shard subprocesses (subprocess backend).
    shards: int = 2
    #: Whether fault-tolerance supervision was explicitly requested
    #: (checkpoint / retry override / trial timeout). The serial backend
    #: uses the classic fail-fast sweep loop when unsupervised.
    supervised: bool = False
    #: Streaming hook; see module docstring.
    on_chunk: Optional[ChunkSink] = None
    #: ``False`` drops each chunk's records after ``on_chunk`` consumed
    #: them — streaming-aggregation mode, no canonical record list.
    keep_records: bool = True

    @property
    def trace(self) -> bool:
        """Whether workers should record and ship telemetry."""
        return self.instrumentation.telemetry is not None


@dataclass
class SupervisionStats:
    """Fault-tolerance outcomes of one run, for operators.

    Filled by the backends (liveness supervision, failover, journal
    replay) and surfaced three ways: on
    :attr:`repro.feast.runner.ExperimentResult.supervision`, in the CLI
    fault report, and — on traced runs — as ``supervision.*`` obs
    counters that ``repro report`` renders as a dedicated section.
    """

    #: Shards declared stalled (no journal progress past the deadline)
    #: and sent SIGTERM.
    stalls_detected: int = 0
    #: Stalled shards that ignored SIGTERM and were SIGKILLed after the
    #: grace period.
    kills_escalated: int = 0
    #: Worker relaunches (after a crash, injected kill, or stall kill).
    relaunches: int = 0
    #: Shards that exhausted their launch cap and had their remaining
    #: chunks reassigned to surviving shards.
    shards_failed_over: int = 0
    #: Chunk keys repartitioned onto failover workers.
    chunks_reassigned: int = 0
    #: Chunks recovered from journals instead of re-running.
    chunks_replayed: int = 0

    def merge(self, other: "SupervisionStats") -> None:
        self.stalls_detected += other.stalls_detected
        self.kills_escalated += other.kills_escalated
        self.relaunches += other.relaunches
        self.shards_failed_over += other.shards_failed_over
        self.chunks_reassigned += other.chunks_reassigned
        self.chunks_replayed += other.chunks_replayed

    def as_dict(self) -> Dict[str, int]:
        return {
            "stalls_detected": self.stalls_detected,
            "kills_escalated": self.kills_escalated,
            "relaunches": self.relaunches,
            "shards_failed_over": self.shards_failed_over,
            "chunks_reassigned": self.chunks_reassigned,
            "chunks_replayed": self.chunks_replayed,
        }

    def any(self) -> bool:
        """Whether anything supervision-worthy happened at all."""
        return any(self.as_dict().values())


@dataclass
class BackendOutcome:
    """What a backend produced: completed chunks + fault accounting."""

    #: Completed chunk results by key (values are ``None`` when
    #: ``keep_records=False`` streamed them away).
    chunks: Dict[ChunkKey, object] = field(default_factory=dict)
    #: Chunks given up on, with reasons; their trials have no records.
    quarantined: Dict[ChunkKey, str] = field(default_factory=dict)
    #: Every fault event observed, in observation order.
    failures: List[TrialFailure] = field(default_factory=list)
    #: Why execution degraded below what was requested, if it did.
    degraded_reason: Optional[str] = None
    #: Trials whose records were streamed (and possibly dropped).
    streamed_trials: int = 0
    #: Liveness/failover accounting (see :class:`SupervisionStats`).
    supervision: SupervisionStats = field(default_factory=SupervisionStats)


class ExecutionBackend(ABC):
    """Strategy interface: *where* the chunks of a sweep execute.

    Implementations: :class:`~repro.feast.backends.serial.SerialBackend`
    (this process), :class:`~repro.feast.backends.pool.ProcessPoolBackend`
    (a supervised ``ProcessPoolExecutor``), and
    :class:`~repro.feast.backends.shards.SubprocessBackend` (independent
    ``repro`` worker subprocesses merged through the checkpoint
    journal). Register custom backends with
    :func:`repro.feast.backends.register_backend`.
    """

    #: Registry name; also the ``engine`` attribute of the run span.
    name: ClassVar[str] = "abstract"

    def prepare(self, request: ExecutionRequest) -> None:
        """Validate the request before the run span opens.

        Raise :class:`ExperimentError` for unsatisfiable requests (e.g.
        an unpicklable config on a multi-process backend).
        """

    @abstractmethod
    def run(self, request: ExecutionRequest) -> BackendOutcome:
        """Drive every chunk to done-or-quarantined and report."""


@dataclass
class ChunkState:
    """Driver-side bookkeeping of one chunk's execution attempts."""

    spec: TrialSpec
    #: Failed attempts consumed so far (also the next attempt's number).
    attempt: int = 0
    #: Monotonic time before which the chunk must not be resubmitted.
    eligible_at: float = 0.0
    #: (exception type name, message) of the previous failure.
    last_signature: Optional[Tuple[str, str]] = None
    #: Suspected of killing the pool — re-run alone until cleared.
    suspect: bool = False


class ChunkDriver:
    """Drives a set of chunks to done-or-quarantined, backend-agnostic.

    Owns the bookkeeping every backend shares: attempt counting with
    retry/backoff, deterministic-failure quarantine, checkpoint-journal
    replay and append, telemetry adoption, instrumentation/progress, and
    the streaming hook. Backends subclass (pool supervision) or use it
    directly (:meth:`run_in_process`, the serial chunk loop that is also
    the pool backend's degraded mode and the shard worker's engine).

    ``keys`` restricts the driver to a subset of the config's chunks —
    the shard worker passes its partition; the default is every chunk.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        inst: Instrumentation,
        policy: RetryPolicy,
        journal=None,
        keys: Optional[List[ChunkKey]] = None,
        on_chunk: Optional[ChunkSink] = None,
        keep_records: bool = True,
    ) -> None:
        self.config = config
        self.inst = inst
        self.policy = policy
        self.journal = journal
        self.on_chunk = on_chunk
        self.keep_records = keep_records
        #: Whether workers should record and ship telemetry.
        self.trace = inst.telemetry is not None
        self.states: Dict[ChunkKey, ChunkState] = {}
        self.waiting: List[ChunkKey] = []
        self.done: Dict[ChunkKey, object] = {}
        self.quarantined: Dict[ChunkKey, str] = {}
        self.failures: List[TrialFailure] = []
        self.degraded_reason: Optional[str] = None
        self.streamed_trials = 0
        self.supervision = SupervisionStats()
        for key in (list(config.chunk_keys()) if keys is None else keys):
            scenario, index = key
            if journal is not None and key in journal.replayed:
                replayed = journal.replayed[key]
                self.failures.extend(replayed.failures)
                inst.replayed(replayed.timings, replayed.n_trials)
                self.supervision.chunks_replayed += 1
                self._store(key, replayed, journaled=True)
                continue
            self.states[key] = ChunkState(
                spec=TrialSpec(config=config, scenario=scenario, index=index)
            )
            self.waiting.append(key)

    # -- outcome handling ----------------------------------------------
    def _store(self, key: ChunkKey, chunk, journaled: bool) -> None:
        """File one completed chunk: journal, stream, keep or drop."""
        if self.journal is not None and not journaled:
            self.journal.append(chunk)
        if self.on_chunk is not None:
            self.on_chunk(key, chunk)
            self.streamed_trials += chunk.n_trials
        self.done[key] = chunk if self.keep_records else None
        # Observation only: a no-op unless a live status stream is
        # active in this process (shard workers never have one).
        live.publish(
            "progress",
            scenario=key[0],
            index=key[1],
            trials=chunk.n_trials,
            replayed=journaled,
            done_chunks=len(self.done),
        )

    def complete(self, key: ChunkKey, chunk) -> None:
        """Record one successfully executed chunk."""
        self.states[key].suspect = False
        self.failures.extend(chunk.failures)
        for failure in chunk.failures:
            self.inst.record_failure(failure)
        if self.inst.telemetry is not None:
            # Graft the worker's span tree under the run span and fold
            # its metrics/resource samples into the run's registry.
            self.inst.telemetry.adopt_chunk(
                chunk.spans, chunk.metrics, chunk.resources
            )
        self._store(key, chunk, journaled=False)
        self.inst.absorb(chunk.timings, chunk.n_trials)

    def fail(self, key: ChunkKey, kind: str, exc: BaseException) -> None:
        """Consume one attempt of ``key``; requeue or quarantine it."""
        state = self.states[key]
        state.attempt += 1
        signature = (type(exc).__name__, str(exc))
        failure = TrialFailure(
            scenario=key[0], index=key[1], kind=kind,
            message=f"{signature[0]}: {signature[1]}",
            attempt=state.attempt,
        )
        self.failures.append(failure)
        self.inst.record_failure(failure)
        deterministic = (
            kind == "exception" and state.last_signature == signature
        )
        state.last_signature = signature
        if deterministic:
            self.quarantine(key, (
                f"deterministic failure (identical exception on "
                f"consecutive attempts): {failure.message}"
            ))
        elif state.attempt >= self.policy.max_attempts:
            self.quarantine(key, (
                f"exhausted {self.policy.max_attempts} attempts; last "
                f"failure ({kind}): {failure.message}"
            ))
        else:
            self.inst.retried()
            # Deterministic per-chunk jitter decorrelates the retries of
            # chunks (and shards) that failed at the same instant.
            state.eligible_at = time.monotonic() + self.policy.backoff_jittered(
                state.attempt, self.config.seed, f"{key[0]}:{key[1]}"
            )
            self.waiting.append(key)

    def quarantine(self, key: ChunkKey, reason: str) -> None:
        """Give up on ``key``: record the reason, keep the sweep going."""
        self.quarantined[key] = reason
        self.inst.quarantine()
        failure = TrialFailure(
            scenario=key[0], index=key[1], kind="quarantine",
            message=reason, attempt=self.states[key].attempt,
        )
        self.failures.append(failure)
        self.inst.record_failure(failure)

    def outstanding(self) -> int:
        return len(self.states) - sum(
            1 for k in self.states if k in self.done or k in self.quarantined
        )

    def outcome(self) -> BackendOutcome:
        return BackendOutcome(
            chunks=self.done,
            quarantined=self.quarantined,
            failures=self.failures,
            degraded_reason=self.degraded_reason,
            streamed_trials=self.streamed_trials,
            supervision=self.supervision,
        )

    # -- the serial chunk loop -----------------------------------------
    def run_in_process(self) -> None:
        """Run the remaining chunks in this process, one at a time.

        Exceptions get the same retry/quarantine treatment as in pool
        mode; crash/hang protection requires worker processes and is
        unavailable here (injected crashes are parent-safe by design —
        see :mod:`repro.feast.faultinject`).
        """
        while self.waiting:
            now = time.monotonic()
            key = min(self.waiting, key=lambda k: self.states[k].eligible_at)
            delay = self.states[key].eligible_at - now
            if delay > 0:
                time.sleep(delay)
            self.waiting.remove(key)
            state = self.states[key]
            try:
                chunk = execute_chunk(
                    state.spec, state.attempt, self.config.trial_timeout,
                    self.trace,
                )
            except Exception as exc:
                self.fail(key, "exception", exc)
            else:
                self.complete(key, chunk)


def assemble_records(
    config: ExperimentConfig,
    chunks: Dict[ChunkKey, object],
    quarantined: Dict[ChunkKey, str],
) -> List[TrialRecord]:
    """Reorder completed chunks into the canonical serial record order.

    The serial sweep iterates scenario → size → method → index; chunks
    complete in arbitrary order on any parallel backend, so this is the
    inverse permutation that makes every backend's output byte-identical.
    Quarantined chunks' trials are omitted (the caller lists them on the
    result); a chunk that is neither done nor quarantined is an engine
    bug and raises.
    """
    records: List[TrialRecord] = []
    for scenario in config.scenarios:
        for n_processors in config.system_sizes:
            for method in config.methods:
                for index in range(config.n_graphs):
                    key = (scenario, index)
                    if key in quarantined:
                        continue
                    chunk = chunks.get(key)
                    if chunk is None:
                        raise ExperimentError(
                            f"chunk (scenario={scenario}, graph={index}) "
                            "is neither completed nor quarantined — "
                            "execution backend lost it"
                        )
                    records.append(
                        chunk.records[(n_processors, method.label)]
                    )
    return records
