"""Fault-tolerant execution over a local ``ProcessPoolExecutor``.

The pool supervisor extends the shared :class:`~.base.ChunkDriver`
bookkeeping with everything that only matters once worker *processes*
exist:

* **Pool supervision** — a :class:`BrokenProcessPool` respawns the
  executor and requeues in-flight chunks. Crash *attribution* uses
  probation: after a multi-chunk pool death the suspects re-run one at a
  time, so the chunk that keeps killing workers consumes attempts while
  innocent bystanders are requeued free of charge. After
  ``RetryPolicy.max_pool_respawns`` deaths the backend degrades to
  in-process execution with an :class:`ExperimentWarning` instead of
  aborting.
* **Hard-hang protection** — with ``config.trial_timeout`` set, any
  chunk that overruns its whole-chunk wall-clock budget gets its pool
  killed and the chunk charged a ``timeout`` attempt; cooperative
  budgets inside workers handle the soft cases.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from typing import Dict, List, Optional

from repro.errors import (
    ExperimentError,
    ExperimentWarning,
    TrialTimeoutError,
    WorkerCrashError,
)
from repro.feast.backends.base import (
    BackendOutcome,
    ChunkDriver,
    ExecutionBackend,
    ExecutionRequest,
)
from repro.feast.backends.work import ChunkKey, execute_chunk, is_parallelizable
from repro.obs import live as obs_live


class PoolSupervisor(ChunkDriver):
    """Drives chunks over a supervised process pool."""

    def __init__(self, request: ExecutionRequest, journal=None) -> None:
        super().__init__(
            request.config,
            request.instrumentation,
            request.policy,
            journal=journal,
            on_chunk=request.on_chunk,
            keep_records=request.keep_records,
        )
        self.n_jobs = request.jobs
        self.pool_deaths = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._inflight: Dict[object, ChunkKey] = {}
        self._started: Dict[ChunkKey, float] = {}
        timeout = self.config.trial_timeout
        self._chunk_budget: Optional[float] = (
            None if timeout is None
            else timeout * self.config.trials_per_graph
            + max(self.policy.timeout_grace, timeout)
        )

    # -- pool management -----------------------------------------------
    def _spawn_pool(self) -> None:
        max_workers = min(self.n_jobs, max(1, len(self.states)))
        self._pool = ProcessPoolExecutor(max_workers=max_workers)

    def _discard_pool(self, kill: bool = False) -> None:
        if self._pool is None:
            return
        if kill:
            for process in list(
                getattr(self._pool, "_processes", {}).values()
            ):
                try:
                    process.kill()
                except Exception:
                    pass
        try:
            self._pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        self._pool = None

    def _submit(self, key: ChunkKey) -> bool:
        state = self.states[key]
        try:
            future = self._pool.submit(
                execute_chunk, state.spec, state.attempt,
                self.config.trial_timeout, self.trace,
            )
        except BrokenExecutor:
            return False
        self._inflight[future] = key
        self._started[key] = time.monotonic()
        return True

    def _probation(self) -> bool:
        """Whether any chunk is suspected of killing workers."""
        return any(
            self.states[k].suspect
            for k in list(self.waiting) + list(self._inflight.values())
        )

    def _submittable(self, now: float) -> List[ChunkKey]:
        if self._probation():
            if self._inflight:
                return []
            ready = sorted(
                (k for k in self.waiting
                 if self.states[k].suspect
                 and self.states[k].eligible_at <= now),
                key=lambda k: self.states[k].eligible_at,
            )
            return ready[:1]
        return [k for k in self.waiting if self.states[k].eligible_at <= now]

    def _next_eligible(self) -> float:
        keys = (
            [k for k in self.waiting if self.states[k].suspect]
            if self._probation() else self.waiting
        )
        return min(self.states[k].eligible_at for k in keys)

    def _wait_timeout(self, now: float) -> Optional[float]:
        deadlines: List[float] = []
        if self._chunk_budget is not None:
            deadlines.extend(
                started + self._chunk_budget
                for started in self._started.values()
            )
        deadlines.extend(
            self.states[k].eligible_at for k in self.waiting
        )
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - now)

    # -- event handling ------------------------------------------------
    def _drain(self, finished) -> List[ChunkKey]:
        """Process completed futures; return keys hit by a pool break."""
        broken: List[ChunkKey] = []
        for future in finished:
            key = self._inflight.pop(future)
            self._started.pop(key, None)
            try:
                chunk = future.result()
            except BrokenExecutor:
                broken.append(key)
            except Exception as exc:
                self.fail(key, "exception", exc)
            else:
                self.complete(key, chunk)
        return broken

    def _on_pool_break(self, broken: List[ChunkKey]) -> None:
        """A worker died: respawn the pool and requeue in-flight chunks.

        With exactly one victim the crash is attributed to it (an attempt
        is consumed). With several, nobody can tell which chunk killed
        the worker, so all victims are requeued free of charge but marked
        suspect — they then re-run one at a time until each either
        completes or crashes alone (precise attribution).
        """
        victims = list(broken)
        victims.extend(self._inflight.values())
        self._inflight.clear()
        self._started.clear()
        self._discard_pool()
        self.pool_deaths += 1
        self.inst.pool_respawned()
        obs_live.publish(
            "supervision", event="pool-respawn", ident="pool",
            detail=(
                f"pool death {self.pool_deaths} "
                f"({len(victims)} in-flight chunk(s) requeued)"
            ),
        )
        now = time.monotonic()
        if len(victims) == 1:
            key = victims[0]
            self.states[key].suspect = True
            self.fail(key, "crash", WorkerCrashError(
                f"worker process died while running chunk "
                f"(scenario={key[0]}, graph={key[1]})"
            ))
        else:
            for key in victims:
                state = self.states[key]
                state.suspect = True
                state.eligible_at = now
                self.waiting.append(key)
        if self.pool_deaths > self.policy.max_pool_respawns:
            self.degraded_reason = (
                f"process pool died {self.pool_deaths} times "
                f"(> max_pool_respawns={self.policy.max_pool_respawns}); "
                "degraded to in-process serial execution"
            )
            obs_live.publish(
                "supervision", event="pool-degraded", ident="pool",
                detail=self.degraded_reason,
            )
            return
        self._spawn_pool()

    def _check_overdue(self) -> None:
        """Kill the pool if any chunk overran its wall-clock budget."""
        if self._chunk_budget is None or not self._started:
            return
        now = time.monotonic()
        overdue = [
            key for key, started in self._started.items()
            if now - started > self._chunk_budget
        ]
        if not overdue:
            return
        # Collect any results that finished while we were deciding.
        finished, _ = wait(set(self._inflight), timeout=0)
        broken = self._drain(finished)
        if broken:
            self._on_pool_break(broken)
            return
        overdue = [
            key for key, started in self._started.items()
            if now - started > self._chunk_budget
        ]
        if not overdue:
            return
        # The hang is attributed precisely (we know which chunks are
        # overdue), so this deliberate kill does not count as a pool
        # death; innocent in-flight chunks are requeued free of charge.
        self._discard_pool(kill=True)
        survivors = [
            key for key in self._inflight.values() if key not in overdue
        ]
        self._inflight.clear()
        self._started.clear()
        for key in overdue:
            self.fail(key, "timeout", TrialTimeoutError(
                f"chunk (scenario={key[0]}, graph={key[1]}) exceeded its "
                f"{self._chunk_budget:.3g}s budget "
                f"({self.config.trials_per_graph} trials x "
                f"{self.config.trial_timeout:g}s trial timeout)"
            ))
        now = time.monotonic()
        for key in survivors:
            self.states[key].eligible_at = now
            self.waiting.append(key)
        self._spawn_pool()

    # -- main loop -----------------------------------------------------
    def run(self) -> None:
        """Drive every chunk to completion or quarantine."""
        self._spawn_pool()
        try:
            while self.outstanding() > 0:
                if self.degraded_reason is not None:
                    warnings.warn(
                        f"experiment {self.config.name!r}: "
                        f"{self.degraded_reason}",
                        ExperimentWarning,
                        stacklevel=3,
                    )
                    self.run_in_process()
                    return
                now = time.monotonic()
                submitted_all = True
                for key in self._submittable(now):
                    self.waiting.remove(key)
                    if not self._submit(key):
                        # The pool broke between waits; requeue and treat
                        # it as a break with no attributable victim.
                        self.waiting.append(key)
                        self._on_pool_break([])
                        submitted_all = False
                        break
                if not submitted_all:
                    continue
                if not self._inflight:
                    # Everything runnable is backing off.
                    delay = self._next_eligible() - time.monotonic()
                    if delay > 0:
                        time.sleep(min(delay, 1.0))
                    continue
                finished, _ = wait(
                    set(self._inflight),
                    timeout=self._wait_timeout(time.monotonic()),
                    return_when=FIRST_COMPLETED,
                )
                broken = self._drain(finished)
                if broken:
                    self._on_pool_break(broken)
                    continue
                self._check_overdue()
        finally:
            self._discard_pool()


class ProcessPoolBackend(ExecutionBackend):
    """Chunks fan out over a supervised local process pool."""

    name = "pool"

    def prepare(self, request: ExecutionRequest) -> None:
        if not is_parallelizable(request.config):
            raise ExperimentError(
                f"experiment {request.config.name!r} carries an unpicklable "
                "graph_factory; run it with jobs=1"
            )

    def run(self, request: ExecutionRequest) -> BackendOutcome:
        journal = None
        if request.checkpoint is not None:
            from repro.feast.persistence import CheckpointJournal

            journal = CheckpointJournal(request.checkpoint, request.config)
        supervisor = PoolSupervisor(request, journal=journal)
        try:
            supervisor.run()
        finally:
            if journal is not None:
                journal.close()
        return supervisor.outcome()
