"""The work-unit contract shared by every execution backend.

One :class:`TrialSpec` is the unit of distributable work: all
(size × method) trials of a single (scenario, graph-index) pair. The
spec is tiny and picklable — it carries the experiment config plus the
chunk coordinates, and the executing process regenerates the task graph
locally from the (seed, scenario, index) contract
(:func:`repro.feast.runner.trial_seed`), so no task graph ever crosses a
process or host boundary. :func:`run_chunk` executes one spec and
returns a :class:`ChunkResult`; backends differ only in *where* and
*how many at a time* they call it.

This module used to live inside :mod:`repro.feast.parallel`; it was
lifted out so that serial, process-pool, and subprocess-shard backends
(:mod:`repro.feast.backends`) consume one definition of the contract.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import budget
from repro.errors import ExperimentError
from repro.obs import runtime as obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.resources import ResourceSample, sample_resources
from repro.obs.spans import Span
from repro.feast.config import ExperimentConfig, speeds_for
from repro.feast.instrumentation import (
    Instrumentation,
    PhaseTimings,
    TrialFailure,
)
from repro.feast.runner import (
    TrialRecord,
    distribute_for_trial,
    graph_for_trial,
    make_record,
    prefetch_distributions,
    run_trial,
)
from repro.machine.system import System
from repro.machine.topology import make_interconnect

#: Chunk coordinates: (scenario, graph index).
ChunkKey = Tuple[str, int]


def default_jobs() -> int:
    """The cpu_count-aware default worker count (>= 1)."""
    return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request: ``None``/``0`` means all cores.

    Values above the machine's core count are allowed (the pool is
    capped at one worker per chunk anyway); negatives are rejected.
    """
    if jobs is None or jobs == 0:
        return default_jobs()
    if jobs < 0:
        raise ExperimentError(f"jobs must be >= 0, got {jobs}")
    return jobs


def is_parallelizable(config: ExperimentConfig) -> bool:
    """Whether ``config`` can cross a process boundary.

    Configs are plain data except ``graph_factory``, which may be an
    unpicklable in-process closure; those run serially instead.
    """
    if config.graph_factory is None:
        return True
    try:
        pickle.dumps(config)
    except Exception:
        return False
    return True


@dataclass(frozen=True)
class RetryPolicy:
    """How a backend reacts to chunk failures.

    The default comes from the experiment config
    (:meth:`from_config`: ``max_attempts = config.max_retries + 1``);
    pass an explicit policy to tune backoff or pool-respawn limits.
    """

    #: Total attempts per chunk (first run + retries) before quarantine.
    max_attempts: int = 3
    #: First-retry backoff delay, seconds.
    backoff_base: float = 0.25
    #: Multiplier applied per further retry.
    backoff_factor: float = 2.0
    #: Backoff ceiling, seconds.
    backoff_max: float = 4.0
    #: Pool deaths tolerated before degrading to in-process execution.
    max_pool_respawns: int = 8
    #: Extra seconds granted on top of the per-chunk budget
    #: (``trial_timeout × trials_per_graph``) before the parent kills an
    #: overdue chunk; covers graph generation and scheduling jitter.
    timeout_grace: float = 1.0
    #: Fractional backoff jitter: each retry delay is stretched by up to
    #: this fraction, deterministically derived from (seed, token,
    #: attempt), so simultaneous shard relaunches never synchronize
    #: their retries against a shared journal directory. 0 disables.
    jitter: float = 0.25
    #: Liveness supervision (subprocess backend): seconds a shard may go
    #: without journal progress before it is declared stalled and
    #: escalated SIGTERM → :attr:`stall_grace` → SIGKILL. ``None``
    #: disables stall detection (the default — a long legitimate chunk
    #: produces no journal growth while it computes).
    stall_timeout: Optional[float] = None
    #: Seconds between the stall SIGTERM and the SIGKILL escalation.
    stall_grace: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ExperimentError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ExperimentError("backoff delays must be >= 0")
        if self.max_pool_respawns < 0:
            raise ExperimentError(
                f"max_pool_respawns must be >= 0, got {self.max_pool_respawns}"
            )
        if self.jitter < 0:
            raise ExperimentError(f"jitter must be >= 0, got {self.jitter}")
        if self.stall_timeout is not None and self.stall_timeout <= 0:
            raise ExperimentError(
                f"stall_timeout must be > 0, got {self.stall_timeout}"
            )
        if self.stall_grace < 0:
            raise ExperimentError(
                f"stall_grace must be >= 0, got {self.stall_grace}"
            )

    @classmethod
    def from_config(cls, config: ExperimentConfig) -> "RetryPolicy":
        return cls(max_attempts=config.max_retries + 1)

    def backoff(self, attempt: int) -> float:
        """Delay before resubmitting after the ``attempt``-th failure."""
        return min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )

    def backoff_jittered(self, attempt: int, seed: int, token: str) -> float:
        """:meth:`backoff` stretched by deterministic, seed-derived jitter.

        The jitter fraction is drawn from a :class:`random.Random`
        seeded with a stable blake2b hash of ``(seed, token, attempt)``:
        the same coordinates always yield the same delay (reproducible
        runs), while different tokens — shard idents, chunk keys — get
        decorrelated delays, so a fleet of relaunching shards never
        thunders back in lockstep.
        """
        base = self.backoff(attempt)
        if self.jitter <= 0 or base <= 0:
            return base
        digest = hashlib.blake2b(
            f"{seed}:{token}:{attempt}".encode("utf-8"), digest_size=8
        ).digest()
        rng = random.Random(int.from_bytes(digest, "big"))
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class TrialSpec:
    """One worker work unit: every (size × method) trial of one graph.

    Carries only the (picklable) config plus the (scenario, index)
    coordinates; the worker regenerates the graph from its seed.
    """

    config: ExperimentConfig
    scenario: str
    index: int


@dataclass
class ChunkResult:
    """One completed :class:`TrialSpec`: records keyed for reassembly."""

    scenario: str
    index: int
    #: (n_processors, method label) → record, for canonical reordering.
    records: Dict[Tuple[int, str], TrialRecord] = field(default_factory=dict)
    timings: PhaseTimings = field(default_factory=PhaseTimings)
    #: Non-fatal fault events observed inside the worker (slow trials).
    failures: List[TrialFailure] = field(default_factory=list)
    #: Telemetry recorded inside the worker when tracing is on: the
    #: chunk's finished span tree, its local metrics registry, and its
    #: resource-use delta. All empty/None on untraced runs.
    spans: List[Span] = field(default_factory=list)
    metrics: Optional[MetricsRegistry] = None
    resources: List[ResourceSample] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.records)


def run_chunk(
    spec: TrialSpec,
    trial_timeout: Optional[float] = None,
    attempt: int = 0,
    trace: bool = False,
) -> ChunkResult:
    """Execute one chunk (runs inside a worker process).

    Mirrors the serial loop's per-graph work exactly: same seeds, same
    distribution reuse, same metrics — only the loop nesting differs,
    which the parent undoes when reassembling. ``config.batch`` prefetches
    the chunk's distributions through the batch kernel first, exactly as
    the serial loop does per scenario (bit-identical records either way). Each (size × method)
    trial runs under a cooperative wall-clock budget of
    ``trial_timeout`` seconds (default: the config's); a trial that
    completes past its budget is kept but flagged with a ``slow-trial``
    failure event.

    With ``trace=True`` the worker records a local telemetry session —
    a ``chunk`` span holding one ``trial`` span per (size × method),
    each with ``generate``/``distribute``/``schedule`` children plus
    whatever deeper components report (B&B search spans, cache
    counters) — samples its own RSS/CPU around the chunk, and ships
    everything back on the :class:`ChunkResult`. Tracing never changes
    the records: the measured pipeline is identical either way.
    """
    config = spec.config
    timeout = trial_timeout if trial_timeout is not None else config.trial_timeout
    inst = Instrumentation()
    chunk = ChunkResult(scenario=spec.scenario, index=spec.index,
                        timings=inst.timings)
    telemetry = obs.Telemetry() if trace else None
    before = sample_resources() if trace else None
    with obs.activate(telemetry):
        with obs.span("chunk", scenario=spec.scenario, index=spec.index,
                      attempt=attempt) as chunk_span:
            graph_config = config.graph_config.with_scenario(spec.scenario)
            with inst.phase("generate"):
                graph = graph_for_trial(
                    config, graph_config, spec.scenario, spec.index
                )
            distributors = {
                method.label: method.build() for method in config.methods
            }
            reusable: Dict[object, object] = {}
            prefetched: Optional[Dict[object, object]] = None
            if config.batch:
                with inst.phase("distribute"):
                    prefetched = prefetch_distributions(
                        config, [graph], reusable, indices=[spec.index]
                    )
            for n_processors in config.system_sizes:
                speeds = speeds_for(config.speed_profile, n_processors)
                system = System(
                    n_processors,
                    interconnect=make_interconnect(
                        config.topology, n_processors
                    ),
                    speeds=speeds,
                )
                total_capacity = float(sum(speeds))
                for method in config.methods:
                    with obs.span("trial", n_processors=n_processors,
                                  method=method.label), \
                         budget.trial_deadline(timeout):
                        began = time.perf_counter()
                        with inst.phase("distribute"):
                            assignment = distribute_for_trial(
                                method,
                                distributors[method.label],
                                graph,
                                n_processors,
                                total_capacity,
                                reusable,
                                (method.label, spec.index),
                                prefetched,
                            )
                        obs.observe(
                            f"distribute.seconds.n{graph.n_subtasks}",
                            time.perf_counter() - began,
                        )
                        with inst.phase("schedule"):
                            metrics = run_trial(
                                graph,
                                assignment,
                                system,
                                policy_name=config.policy,
                                respect_release_times=(
                                    config.respect_release_times
                                ),
                            )
                        if budget.expired():
                            obs.count("engine.faults.slow-trial")
                            chunk.failures.append(TrialFailure(
                                scenario=spec.scenario,
                                index=spec.index,
                                kind="slow-trial",
                                message=(
                                    f"trial (n_processors={n_processors}, "
                                    f"method={method.label}) overran its "
                                    f"{timeout:g}s budget; result kept"
                                ),
                            ))
                    chunk.records[(n_processors, method.label)] = make_record(
                        config, spec.scenario, n_processors, method,
                        spec.index, assignment, metrics,
                    )
            obs.count("engine.chunks_completed")
            obs.count("engine.trials_measured", len(chunk.records))
            if chunk_span is not None and before is not None:
                used = sample_resources().delta(before)
                chunk_span.annotate(
                    rss_max_kb=used.rss_max_kb,
                    cpu_user_s=used.cpu_user_s,
                    cpu_system_s=used.cpu_system_s,
                )
                obs.gauge("worker.rss_max_kb", used.rss_max_kb)
                chunk.resources.append(used)
    if telemetry is not None:
        chunk.spans = telemetry.spans.finished()
        chunk.metrics = telemetry.metrics
    return chunk


def execute_chunk(
    spec: TrialSpec,
    attempt: int,
    trial_timeout: Optional[float],
    trace: bool = False,
) -> ChunkResult:
    """Worker entry point: fault-injection hook + the chunk itself."""
    from repro.feast import faultinject

    faultinject.maybe_inject(spec.scenario, spec.index, attempt)
    return run_chunk(
        spec, trial_timeout=trial_timeout, attempt=attempt, trace=trace
    )
