"""In-process execution: the classic sweep loop and the serial backend.

Two serial modes live here, with different failure semantics:

* :func:`run_classic_serial` — the original 4-deep sweep loop
  (scenario → size → method → graph), fail-fast, per-*trial* progress.
  ``run_experiment(jobs=1)`` with no fault-tolerance features uses it;
  it predates the backend layer and stays because its per-trial progress
  granularity and raise-on-first-error contract are part of the public
  API.
* :class:`SerialBackend` — the chunked driver loop: same process, but
  work flows through the shared :class:`~.base.ChunkDriver`, so
  retry/quarantine, checkpoint journaling, and streaming all work with
  one worker. This is also the degraded mode of the pool backend and the
  engine inside every shard worker.

Both produce byte-identical records (the chunk loop is the serial loop
with its nesting permuted, which canonical assembly undoes).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.errors import ExperimentError
from repro.obs import live as obs_live
from repro.obs import runtime as obs
from repro.core.annotations import DeadlineAssignment
from repro.feast.config import ExperimentConfig, speeds_for
from repro.feast.instrumentation import Instrumentation
from repro.feast.runner import (
    ExperimentResult,
    distribute_for_trial,
    graph_for_trial,
    make_record,
    prefetch_distributions,
    run_trial,
)
from repro.machine.system import System
from repro.machine.topology import make_interconnect
from repro.feast.backends.base import (
    BackendOutcome,
    ChunkDriver,
    ExecutionBackend,
    ExecutionRequest,
)


class SerialBackend(ExecutionBackend):
    """Chunked in-process execution behind the backend interface.

    One chunk at a time, this process — but with the full supervised
    feature set (retry, quarantine, checkpoint/resume, streaming), which
    the classic loop lacks. Crash/hang protection needs worker
    processes and is unavailable here.
    """

    name = "serial"

    def run(self, request: ExecutionRequest) -> BackendOutcome:
        journal = None
        if request.checkpoint is not None:
            from repro.feast.persistence import CheckpointJournal

            journal = CheckpointJournal(request.checkpoint, request.config)
        driver = ChunkDriver(
            request.config,
            request.instrumentation,
            request.policy,
            journal=journal,
            on_chunk=request.on_chunk,
            keep_records=request.keep_records,
        )
        try:
            driver.run_in_process()
        finally:
            if journal is not None:
                journal.close()
        return driver.outcome()


def run_classic_serial(
    config: ExperimentConfig, inst: Instrumentation
) -> ExperimentResult:
    """The original fail-fast serial sweep (per-trial progress)."""
    started = time.perf_counter()
    result = ExperimentResult(config=config, timings=inst.timings, jobs=1)
    inst.start(config.n_trials)

    with obs.activate(inst.telemetry), obs.toplevel_span(
        "run", experiment=config.name, jobs=1, engine="serial"
    ):
        for scenario_no, scenario in enumerate(config.scenarios):
            graph_config = config.graph_config.with_scenario(scenario)
            # Coarse progress for live watchers: the classic loop has no
            # chunk completions, so one event per scenario stands in.
            obs_live.publish(
                "progress",
                scenario=scenario,
                index=scenario_no,
                trials=inst.trials_completed,
                replayed=False,
                done_chunks=scenario_no,
            )
            with obs.span("scenario", scenario=scenario):
                with inst.phase("generate"):
                    graphs = [
                        graph_for_trial(config, graph_config, scenario, i)
                        for i in range(config.n_graphs)
                    ]
                # Distributions reusable across the size sweep (non-ADAPT
                # methods), keyed by (method label, graph index).
                reusable: Dict[object, DeadlineAssignment] = {}
                prefetched: Optional[Dict[object, DeadlineAssignment]] = None
                if config.batch:
                    with inst.phase("distribute"):
                        prefetched = prefetch_distributions(
                            config, graphs, reusable
                        )
                for n_processors in config.system_sizes:
                    speeds = speeds_for(config.speed_profile, n_processors)
                    system = System(
                        n_processors,
                        interconnect=make_interconnect(
                            config.topology, n_processors
                        ),
                        speeds=speeds,
                    )
                    total_capacity = float(sum(speeds))
                    for method in config.methods:
                        distributor = method.build()
                        for index, graph in enumerate(graphs):
                            with obs.span(
                                "trial",
                                scenario=scenario,
                                index=index,
                                n_processors=n_processors,
                                method=method.label,
                            ):
                                began = time.perf_counter()
                                with inst.phase("distribute"):
                                    assignment = distribute_for_trial(
                                        method,
                                        distributor,
                                        graph,
                                        n_processors,
                                        total_capacity,
                                        reusable,
                                        (method.label, index),
                                        prefetched,
                                    )
                                obs.observe(
                                    f"distribute.seconds.n{graph.n_subtasks}",
                                    time.perf_counter() - began,
                                )
                                with inst.phase("schedule"):
                                    metrics = run_trial(
                                        graph,
                                        assignment,
                                        system,
                                        policy_name=config.policy,
                                        respect_release_times=(
                                            config.respect_release_times
                                        ),
                                    )
                                obs.count("engine.trials_measured")
                            result.records.append(
                                make_record(
                                    config, scenario, n_processors, method,
                                    index, assignment, metrics,
                                )
                            )
                            inst.completed()

    if len(result.records) != config.n_trials:
        raise ExperimentError(
            f"experiment {config.name!r} produced {len(result.records)} "
            f"records but planned {config.n_trials}"
        )
    result.elapsed_seconds = time.perf_counter() - started
    inst.finish()
    return result
