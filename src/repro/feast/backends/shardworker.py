"""Shard worker process: ``python -m repro.feast.backends.shardworker``.

One worker owns one shard of a sweep: the chunks whose ordinal in
``config.chunk_keys()`` is congruent to the shard index modulo the
shard count. It executes them through the same :class:`~.base.ChunkDriver`
as every other backend, journaling each completed chunk into its own
config-fingerprinted checkpoint journal — the journal *is* the
transport: the parent merges shard journals, so a worker that dies at
any point loses at most the chunk it was executing, and a relaunched
worker replays its journal and re-runs only what is missing.

The worker receives a pickled payload path on argv (config, shard
coordinates, journal/summary paths, retry policy, trace flag). A
*failover* worker — spawned when another shard exhausted its launch cap
— instead receives an explicit ``keys`` list (the dead shard's
un-journaled chunks) and ``shard == -1``; everything else is identical.
On success the worker atomically writes a JSON summary: fault accounting plus — when
tracing — its serialized span trees, metrics registry, and resource
samples, which the parent grafts under the run span
(:meth:`repro.obs.Telemetry.adopt_chunk`).

Exit codes: 0 = shard complete (summary written); ``86`` = injected
kill (testing hook, below); anything else = crashed, relaunch me.

Testing hook
------------
``REPRO_SHARD_KILL_AFTER=K`` makes a worker exit with code 86 after
journaling ``K`` *new* chunks — but only once per journal (a marker
file remembers the kill), so the parent's relaunch then completes the
shard. ``REPRO_SHARD_KILL_SHARD=i`` restricts the kill to shard ``i``.
This gives the kill-and-resume tests a deterministic victim without
timing games.
"""

from __future__ import annotations

import json
import os
import pickle
import sys
from typing import Optional

from repro.feast.instrumentation import Instrumentation
from repro.obs import runtime as obs
from repro.obs.export import atomic_write_text

#: Exit code of a deliberately injected kill (see module docstring).
KILL_EXIT_CODE = 86


class _InjectedKill(Exception):
    """Raised by the kill hook to unwind out of the driver loop."""


def _kill_after(shard: int) -> Optional[int]:
    """Chunks to journal before the injected kill, or ``None``."""
    raw = os.environ.get("REPRO_SHARD_KILL_AFTER")
    if raw is None:
        return None
    victim = os.environ.get("REPRO_SHARD_KILL_SHARD")
    if victim is not None and int(victim) != shard:
        return None
    return int(raw)


def shard_keys(config, shard: int, n_shards: int):
    """The chunk keys shard ``shard`` of ``n_shards`` owns.

    Round-robin over the canonical chunk ordering: ordinals congruent
    to ``shard`` mod ``n_shards``. Pure arithmetic on
    ``config.chunk_keys()``, so every process — parent, worker,
    relaunched worker — computes identical disjoint partitions.
    """
    return list(config.chunk_keys())[shard::n_shards]


def run_shard(payload: dict) -> int:
    """Execute one shard per ``payload``; returns the exit code."""
    from repro.feast import faultinject
    from repro.feast.backends.base import ChunkDriver
    from repro.feast.persistence import CheckpointJournal

    config = payload["config"]
    shard = payload["shard"]
    n_shards = payload["n_shards"]
    # Failover workers (shard == -1) receive an explicit key list;
    # original shards derive their partition arithmetically.
    keys = payload.get("keys")
    if keys is None:
        keys = shard_keys(config, shard, n_shards)
    # Local-state fault kinds (journal truncation) need to know which
    # journal this process owns; inert unless a plan injects them.
    faultinject.set_journal_context(payload["journal"])
    telemetry = obs.Telemetry() if payload["trace"] else None
    inst = Instrumentation(telemetry=telemetry)
    inst.start(len(keys) * config.trials_per_graph)

    kill_after = _kill_after(shard)
    marker = payload["journal"] + ".killmark"
    if kill_after is not None and os.path.exists(marker):
        kill_after = None
    armed = False
    fresh_chunks = 0

    def on_chunk(key, chunk) -> None:
        nonlocal fresh_chunks
        if not armed or kill_after is None:
            return  # journal replay during driver construction
        fresh_chunks += 1
        if fresh_chunks >= kill_after:
            # The chunk's journal append already happened (the driver
            # journals before it streams), so dying here is exactly the
            # worst-case crash the journal is built for.
            with open(marker, "w") as fp:
                fp.write("killed once\n")
            raise _InjectedKill()

    journal = CheckpointJournal(payload["journal"], config)
    try:
        driver = ChunkDriver(
            config, inst, payload["policy"], journal=journal,
            keys=keys, on_chunk=on_chunk,
        )
        armed = True
        try:
            driver.run_in_process()
        except _InjectedKill:
            return KILL_EXIT_CODE
    finally:
        journal.close()
    inst.finish()

    summary = {
        "shard": shard,
        "n_shards": n_shards,
        "completed": sorted([s, i] for s, i in driver.done),
        "quarantined": [
            [s, i, reason]
            for (s, i), reason in sorted(driver.quarantined.items())
        ],
        "failures": [f.as_dict() for f in driver.failures],
        "trials_completed": inst.trials_completed,
        "replayed_trials": inst.replayed_trials,
        "timings": inst.timings.as_dict(),
    }
    if telemetry is not None:
        summary["telemetry"] = {
            "spans": [s.as_dict() for s in telemetry.spans.finished()],
            "metrics": telemetry.metrics.as_dict(),
            "resources": [r.as_dict() for r in telemetry.resources],
        }
    atomic_write_text(payload["summary"], json.dumps(summary))
    return 0


def main(argv) -> int:
    if len(argv) != 1:
        print(
            "usage: python -m repro.feast.backends.shardworker PAYLOAD",
            file=sys.stderr,
        )
        return 2
    with open(argv[0], "rb") as fp:
        payload = pickle.load(fp)
    return run_shard(payload)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
