"""Pluggable execution backends for the trial engine.

The work-unit contract lives in :mod:`.work`, the backend interface and
shared chunk driver in :mod:`.base`, and three implementations ship
in-tree:

======================  ==========================================
``serial``              chunks run one at a time in this process
``pool``                supervised local ``ProcessPoolExecutor``
``subprocess``          independent shard subprocesses merged
                        through the checkpoint journal
======================  ==========================================

``run_experiment(..., backend="pool")`` / ``repro run --backend`` select
one by name; :func:`register_backend` adds custom ones (see
docs/EXTENDING.md). Every backend produces byte-identical canonical
records for the same config — the parity tests in
``tests/test_backends.py`` hold them to it.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ExperimentError
from repro.feast.backends.base import (
    BackendOutcome,
    ChunkDriver,
    ChunkState,
    ExecutionBackend,
    ExecutionRequest,
    SupervisionStats,
    assemble_records,
)
from repro.feast.backends.pool import PoolSupervisor, ProcessPoolBackend
from repro.feast.backends.serial import SerialBackend, run_classic_serial
from repro.feast.backends.shards import SubprocessBackend
from repro.feast.backends.work import (
    ChunkKey,
    ChunkResult,
    RetryPolicy,
    TrialSpec,
    default_jobs,
    execute_chunk,
    is_parallelizable,
    resolve_jobs,
    run_chunk,
)

#: Name → zero-argument backend factory.
BACKENDS: Dict[str, Callable[[], ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ProcessPoolBackend.name: ProcessPoolBackend,
    SubprocessBackend.name: SubprocessBackend,
}


def register_backend(
    name: str, factory: Callable[[], ExecutionBackend]
) -> None:
    """Register a custom execution backend under ``name``.

    ``factory()`` must return an :class:`ExecutionBackend`. Registering
    an existing name (including the built-ins) replaces it.
    """
    BACKENDS[name] = factory


def backend_names() -> List[str]:
    """The currently registered backend names, sorted."""
    return sorted(BACKENDS)


def make_backend(name: str) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown execution backend {name!r}; expected one of "
            f"{backend_names()}"
        ) from None
    return factory()


__all__ = [
    "BACKENDS",
    "BackendOutcome",
    "ChunkDriver",
    "ChunkKey",
    "ChunkResult",
    "ChunkState",
    "ExecutionBackend",
    "ExecutionRequest",
    "PoolSupervisor",
    "ProcessPoolBackend",
    "RetryPolicy",
    "SerialBackend",
    "SubprocessBackend",
    "SupervisionStats",
    "TrialSpec",
    "assemble_records",
    "backend_names",
    "default_jobs",
    "execute_chunk",
    "is_parallelizable",
    "make_backend",
    "register_backend",
    "resolve_jobs",
    "run_chunk",
    "run_classic_serial",
]
