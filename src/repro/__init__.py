"""repro — reproduction of Jonsson & Shin (ICDCS 1997).

Deadline assignment in distributed hard real-time systems with relaxed
locality constraints: the Basic and Adaptive Slicing Techniques (BST/AST),
a random task-graph workload generator, a multiprocessor platform model, a
deadline-driven list scheduler, and the FEAST-style experiment harness that
reproduces the paper's figures.

Quickstart
----------
>>> import random
>>> from repro import (
...     RandomGraphConfig, generate_task_graph, ast, System, ListScheduler,
...     max_lateness,
... )
>>> graph = generate_task_graph(RandomGraphConfig(), rng=random.Random(0))
>>> assignment = ast("ADAPT").distribute(graph, n_processors=4)
>>> schedule = ListScheduler(System(4)).schedule(graph, assignment)
>>> max_lateness(schedule, assignment) < 0  # schedulable with margin
True
"""

from repro.core import (
    CCAA,
    CCNE,
    AdaptiveLaxityRatio,
    DeadlineAssignment,
    DeadlineDistributor,
    NormalizedLaxityRatio,
    PureLaxityRatio,
    ThresholdLaxityRatio,
    Window,
    ast,
    bst,
    make_estimator,
    make_metric,
    validate_assignment,
)
from repro.errors import ReproError
from repro.graph import (
    RandomGraphConfig,
    Subtask,
    TaskGraph,
    generate_task_graph,
    generate_task_graphs,
    graph_stats,
)
from repro.machine import System, make_interconnect
from repro.sched import (
    ListScheduler,
    Schedule,
    max_lateness,
    schedule_metrics,
)
from repro.feast import (
    ExperimentConfig,
    MethodSpec,
    build_experiment,
    lateness_report,
    run_experiment,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # graph
    "TaskGraph",
    "Subtask",
    "RandomGraphConfig",
    "generate_task_graph",
    "generate_task_graphs",
    "graph_stats",
    # core
    "DeadlineDistributor",
    "DeadlineAssignment",
    "Window",
    "bst",
    "ast",
    "make_metric",
    "make_estimator",
    "validate_assignment",
    "PureLaxityRatio",
    "NormalizedLaxityRatio",
    "ThresholdLaxityRatio",
    "AdaptiveLaxityRatio",
    "CCNE",
    "CCAA",
    # machine + sched
    "System",
    "make_interconnect",
    "ListScheduler",
    "Schedule",
    "max_lateness",
    "schedule_metrics",
    # feast
    "ExperimentConfig",
    "MethodSpec",
    "build_experiment",
    "run_experiment",
    "lateness_report",
]
