"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate on the concrete failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class GraphError(ReproError):
    """Base class for task-graph construction and query failures."""


class DuplicateNodeError(GraphError):
    """A subtask id was added to a graph more than once."""


class UnknownNodeError(GraphError):
    """An operation referenced a subtask id that is not in the graph."""


class DuplicateEdgeError(GraphError):
    """A precedence arc between the same pair of subtasks was added twice."""


class CycleError(GraphError):
    """The precedence relation contains a cycle (not a DAG)."""

    def __init__(self, cycle: list) -> None:
        self.cycle = list(cycle)
        super().__init__(
            "task graph contains a precedence cycle: " + " -> ".join(map(str, cycle))
        )


class ValidationError(ReproError):
    """A model object violates one of its documented invariants."""


class GeneratorError(ReproError):
    """A workload generator was configured with unsatisfiable parameters."""


class DistributionError(ReproError):
    """Deadline distribution could not complete.

    Raised, e.g., when the graph has no anchored end-to-end deadlines, or
    when the slicing loop cannot find any candidate path (which indicates a
    malformed graph rather than an over-constrained one).
    """


class SchedulingError(ReproError):
    """The task-assignment/scheduling phase failed.

    Note that an *infeasible* schedule (positive lateness) is a measurement,
    not an error; this exception covers structural failures such as a pinned
    subtask referencing a processor that does not exist.
    """


class ExperimentError(ReproError):
    """An experiment configuration is inconsistent or a run failed."""


class TrialTimeoutError(ExperimentError):
    """A trial exceeded its wall-clock budget.

    Raised cooperatively (see :mod:`repro.budget`) by components that
    poll the current trial deadline, and used by the experiment engine to
    label chunks it had to kill from the outside.
    """


class WorkerCrashError(ExperimentError):
    """A worker process died (killed, crashed, or its pool broke)."""


class QuarantinedTrialError(ExperimentError):
    """A trial chunk was quarantined after repeated failures.

    The engine records quarantines in
    :attr:`~repro.feast.runner.ExperimentResult.quarantined` and keeps
    going; :meth:`~repro.feast.runner.ExperimentResult.check` raises this
    for callers that need an all-or-nothing run.
    """


class CheckpointError(ExperimentError):
    """A sweep checkpoint journal is unusable.

    Raised when the journal is corrupt, unreadable, or was written by a
    different experiment configuration than the one being resumed.
    """


class ExperimentWarning(ReproError, UserWarning):
    """Non-fatal experiment-engine condition worth surfacing.

    Emitted via :func:`warnings.warn` when the engine degrades instead of
    failing: silent serial fallback for unpicklable configs, process-pool
    respawns, or degradation to in-process execution. Derives from
    :class:`ReproError` so ``-W error::repro.errors.ExperimentWarning``
    and blanket ``ReproError`` handling both work.
    """


class SerializationError(ReproError):
    """A graph or result could not be encoded/decoded."""
