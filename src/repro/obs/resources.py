"""Per-process resource sampling: RSS and CPU time, zero-dependency.

Workers sample themselves around each chunk (:func:`sample_resources`
before and after, :meth:`ResourceSample.delta` between) and ship the
deltas back with the chunk result, so a run's event log answers "which
worker burned the memory/CPU" without any external profiler. Sampling
uses :mod:`resource` (``getrusage``) where available — every POSIX
platform — and degrades to :func:`os.times` (CPU only, RSS reported as
0) elsewhere, so importing this module never fails.

``ru_maxrss`` is kilobytes on Linux and **bytes** on macOS; the sampler
normalizes to kilobytes.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict

from repro.errors import ExperimentError

try:  # POSIX
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    _resource = None


@dataclass(frozen=True)
class ResourceSample:
    """One point-in-time resource reading of one process (picklable)."""

    #: Epoch seconds when the sample was taken.
    ts: float
    #: Peak resident set size so far, kilobytes (0 when unavailable).
    rss_max_kb: float
    #: Cumulative user-mode CPU seconds.
    cpu_user_s: float
    #: Cumulative kernel-mode CPU seconds.
    cpu_system_s: float
    #: Process that took the sample.
    pid: int

    def delta(self, since: "ResourceSample") -> "ResourceSample":
        """Resource use between ``since`` and this sample.

        CPU times subtract; ``rss_max_kb`` is a high-water mark, so the
        later (larger) reading is kept.
        """
        if since.pid != self.pid:
            raise ExperimentError(
                f"resource delta across processes ({since.pid} vs "
                f"{self.pid}) is meaningless"
            )
        return ResourceSample(
            ts=self.ts,
            rss_max_kb=max(self.rss_max_kb, since.rss_max_kb),
            cpu_user_s=self.cpu_user_s - since.cpu_user_s,
            cpu_system_s=self.cpu_system_s - since.cpu_system_s,
            pid=self.pid,
        )

    @property
    def cpu_total_s(self) -> float:
        return self.cpu_user_s + self.cpu_system_s

    def as_dict(self) -> Dict[str, Any]:
        return {
            "ts": self.ts,
            "rss_max_kb": self.rss_max_kb,
            "cpu_user_s": self.cpu_user_s,
            "cpu_system_s": self.cpu_system_s,
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ResourceSample":
        try:
            return cls(
                ts=float(data["ts"]),
                rss_max_kb=float(data["rss_max_kb"]),
                cpu_user_s=float(data["cpu_user_s"]),
                cpu_system_s=float(data["cpu_system_s"]),
                pid=int(data["pid"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(
                f"malformed resource sample: {exc}"
            ) from exc


def sample_resources() -> ResourceSample:
    """Sample this process's peak RSS and cumulative CPU time."""
    now = time.time()
    if _resource is not None:
        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        rss_kb = float(usage.ru_maxrss)
        if sys.platform == "darwin":  # bytes there, kilobytes elsewhere
            rss_kb /= 1024.0
        return ResourceSample(
            ts=now,
            rss_max_kb=rss_kb,
            cpu_user_s=usage.ru_utime,
            cpu_system_s=usage.ru_stime,
            pid=os.getpid(),
        )
    times = os.times()  # pragma: no cover - non-POSIX fallback
    return ResourceSample(
        ts=now,
        rss_max_kb=0.0,
        cpu_user_s=times.user,
        cpu_system_s=times.system,
        pid=os.getpid(),
    )
