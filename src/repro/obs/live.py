"""Live status stream: what a run is doing *while* it runs.

Everything in :mod:`repro.obs` so far is post-hoc — the event log is
written after the run finishes, ``repro report`` reads a finished file.
This module adds the streaming side: a ``status.jsonl`` file next to
the event log that grows *during* the run, one self-describing JSON
line per event, so ``repro top``, the OpenMetrics exporter, and any
external collector can watch a sweep live by tailing a file.

Three producers feed one stream:

* the :class:`StatusSampler` thread snapshots run state (trials
  done/total, per-phase throughput, ETA, parent RSS/CPU, and whatever
  the registered probes report — per-shard liveness, heartbeat ages)
  every ``interval`` seconds and appends a versioned ``status`` line;
* :class:`~repro.feast.backends.base.ChunkDriver` publishes a
  ``progress`` line per completed chunk through the ambient
  :func:`publish` hook;
* the shard fleet supervisor publishes ``supervision`` lines on every
  liveness transition (stall, kill escalation, relaunch, failover).

No participation
----------------
The stream is **observation only**, same contract as the rest of
:mod:`repro.obs`: producers read counters and file sizes, never mutate
engine state, and every write is wrapped so an I/O failure *disables
the stream* (with one :class:`~repro.errors.ExperimentWarning`) instead
of failing the run. The golden-corpus suite asserts that a run with
live sampling enabled produces byte-identical records to an untraced
run. Like :func:`~repro.obs.runtime.count`, :func:`publish` is a cheap
no-op when no stream is active — one module attribute read and an
``is None`` test.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from contextlib import contextmanager
from typing import Any, Callable, Dict, IO, Iterator, List, Optional

from repro.errors import ExperimentWarning, SerializationError
from repro.obs.resources import sample_resources

STATUS_FORMAT = "repro-status"
STATUS_VERSION = 1

#: Filename suffix of status streams (next to ``.events.jsonl``).
STATUS_SUFFIX = ".status.jsonl"

#: Line kinds a status stream may carry.
STATUS_KINDS = ("header", "status", "progress", "supervision", "final")

#: Default seconds between sampler snapshots.
DEFAULT_INTERVAL = 1.0

#: A probe: returns a JSON-serializable dict describing some live state.
ProbeFn = Callable[[], Dict[str, Any]]


class StatusStream:
    """Append-only JSONL status stream of one run (thread-safe).

    The writer mirrors the event log's shape — a header line pinning
    format/version, then one event object per line — but is built for
    concurrent producers: every :meth:`emit` takes a lock, stamps a
    monotonic ``seq`` and wall-clock ``ts``, and flushes, so a tailing
    reader sees whole lines in a total order. A failing write poisons
    the stream (one warning, then silence) rather than the run.
    """

    def __init__(
        self,
        path: str,
        experiment: str,
        run_id: str,
        created: Optional[float] = None,
    ) -> None:
        self.path = os.path.abspath(path)
        self.experiment = experiment
        self.run_id = run_id
        self._lock = threading.Lock()
        self._seq = 0
        self._probes: Dict[str, ProbeFn] = {}
        self._fp: Optional[IO[str]] = open(self.path, "w")
        self.emit(
            "header",
            format=STATUS_FORMAT,
            version=STATUS_VERSION,
            experiment=experiment,
            run_id=run_id,
            created=created if created is not None else time.time(),
            pid=os.getpid(),
        )

    # -- writing -------------------------------------------------------
    def emit(self, kind: str, **fields: Any) -> None:
        """Append one status line; never raises into the caller.

        The stream observes the run, so a full disk or a yanked
        directory must not abort the sweep: the first failure warns and
        closes the stream, later emits are no-ops.
        """
        with self._lock:
            if self._fp is None:
                return
            event = {"kind": kind, "seq": self._seq, "ts": time.time()}
            event.update(fields)
            try:
                self._fp.write(json.dumps(event, sort_keys=True) + "\n")
                self._fp.flush()
            except Exception as exc:
                try:
                    self._fp.close()
                except Exception:
                    pass
                self._fp = None
                warnings.warn(
                    f"status stream {self.path!r} failed "
                    f"({type(exc).__name__}: {exc}); live telemetry "
                    "disabled for the rest of the run",
                    ExperimentWarning,
                    stacklevel=3,
                )
                return
            self._seq += 1

    def close(self, **final_fields: Any) -> None:
        """Emit the terminal ``final`` line and close the file."""
        self.emit("final", **final_fields)
        with self._lock:
            if self._fp is not None:
                try:
                    self._fp.flush()
                    self._fp.close()
                except Exception:
                    pass
                self._fp = None

    def __enter__(self) -> "StatusStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- probes --------------------------------------------------------
    def add_probe(self, name: str, fn: ProbeFn) -> None:
        """Register a live-state probe merged into ``status`` snapshots."""
        with self._lock:
            self._probes[name] = fn

    def remove_probe(self, name: str) -> None:
        with self._lock:
            self._probes.pop(name, None)

    def probe_snapshot(self) -> Dict[str, Any]:
        """Call every registered probe; a raising probe reports its error
        instead of killing the sampler tick."""
        with self._lock:
            probes = dict(self._probes)
        out: Dict[str, Any] = {}
        for name, fn in probes.items():
            try:
                out[name] = fn()
            except Exception as exc:  # observation only — never propagate
                out[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return out


# ----------------------------------------------------------------------
# Ambient hooks (no-ops when no stream is active)
# ----------------------------------------------------------------------
# Module-global, not thread-local: the fleet supervisor, the chunk
# driver, and the sampler thread all belong to one run in one parent
# process, and publishes must work from any of their threads.
_active: Optional[StatusStream] = None


def active_status() -> Optional[StatusStream]:
    """The process's active status stream, if any."""
    return _active


@contextmanager
def activate_status(stream: Optional[StatusStream]) -> Iterator[None]:
    """Run a block with ``stream`` receiving ambient publishes."""
    global _active
    if stream is None:
        yield
        return
    previous = _active
    _active = stream
    try:
        yield
    finally:
        _active = previous


def publish(kind: str, **fields: Any) -> None:
    """Publish one status line on the active stream, if any."""
    stream = _active
    if stream is not None:
        stream.emit(kind, **fields)


@contextmanager
def probe(name: str, fn: ProbeFn) -> Iterator[None]:
    """Register ``fn`` as a live probe for the duration of a block."""
    stream = _active
    if stream is None:
        yield
        return
    stream.add_probe(name, fn)
    try:
        yield
    finally:
        stream.remove_probe(name)


# ----------------------------------------------------------------------
# The sampler thread
# ----------------------------------------------------------------------
class StatusSampler:
    """Periodic run-state snapshotter (a daemon thread in the parent).

    Every ``interval`` seconds — and once more on :meth:`stop` — the
    sampler builds a snapshot from the run's
    :class:`~repro.feast.instrumentation.Instrumentation` (trials,
    phase timings, failures), the parent's resource usage, and the
    stream's registered probes (per-shard liveness while the fleet
    drives), emits it as a ``status`` line, and — when ``metrics_out``
    is set — atomically rewrites the OpenMetrics textfile so external
    scrapers always see a complete snapshot.

    The sampler only ever *reads* engine state (plain attribute reads,
    safe under the GIL) and never blocks the run: it is a daemon thread
    and :meth:`stop` joins it with a bounded timeout.
    """

    def __init__(
        self,
        stream: Optional[StatusStream],
        instrumentation,
        interval: float = DEFAULT_INTERVAL,
        metrics_out: Optional[str] = None,
        backend: Optional[str] = None,
        jobs: Optional[int] = None,
        shards: Optional[int] = None,
    ) -> None:
        if interval <= 0:
            raise SerializationError(
                f"sampler interval must be > 0, got {interval}"
            )
        self.stream = stream
        self.inst = instrumentation
        self.interval = interval
        self.metrics_out = metrics_out
        self.backend = backend
        self.jobs = jobs
        self.shards = shards
        self.samples_taken = 0
        self._started = time.monotonic()
        self._last: Optional[Dict[str, float]] = None  # previous tick
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- snapshot building ---------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """One versioned status snapshot of the run, as plain JSON data."""
        inst = self.inst
        done = inst.trials_completed
        total = inst.total_trials
        wall = inst.wall_elapsed
        now = time.monotonic()
        rate_overall = done / wall if wall > 0 else 0.0
        rate_recent = rate_overall
        if self._last is not None:
            dt = now - self._last["t"]
            if dt > 0:
                rate_recent = (done - self._last["done"]) / dt
        self._last = {"t": now, "done": float(done)}
        remaining = max(0, total - done)
        rate_for_eta = rate_recent if rate_recent > 0 else rate_overall
        eta = remaining / rate_for_eta if rate_for_eta > 0 else None
        parent = sample_resources()
        snap: Dict[str, Any] = {
            "version": STATUS_VERSION,
            "trials": {
                "done": done,
                "total": total,
                "replayed": inst.replayed_trials,
            },
            "throughput": {
                "overall": rate_overall,
                "recent": rate_recent,
            },
            "eta_seconds": eta,
            "wall_elapsed": wall,
            "phases": inst.timings.as_dict(),
            "faults": {
                "failures": len(inst.failures),
                "retries": inst.retries,
                "quarantined": inst.quarantined,
                "pool_respawns": inst.pool_respawns,
            },
            "parent": {
                "pid": parent.pid,
                "rss_max_kb": parent.rss_max_kb,
                "cpu_user_s": parent.cpu_user_s,
                "cpu_system_s": parent.cpu_system_s,
            },
        }
        if self.backend is not None:
            snap["engine"] = {
                "backend": self.backend,
                "jobs": self.jobs,
                "shards": self.shards,
            }
        if self.stream is not None:
            probes = self.stream.probe_snapshot()
            if probes:
                snap["probes"] = probes
        return snap

    def _tick(self) -> None:
        snap = self.snapshot()
        self.samples_taken += 1
        if self.stream is not None:
            self.stream.emit("status", **snap)
        if self.metrics_out is not None:
            self._export_metrics(snap)

    def _export_metrics(self, snap: Dict[str, Any]) -> None:
        from repro.obs.promexport import write_openmetrics

        try:
            write_openmetrics(
                self.metrics_out,
                telemetry=getattr(self.inst, "telemetry", None),
                snapshot=snap,
                experiment=(
                    self.stream.experiment if self.stream is not None
                    else None
                ),
                run_id=(
                    self.stream.run_id if self.stream is not None else None
                ),
            )
        except Exception as exc:  # observation only — never propagate
            warnings.warn(
                f"OpenMetrics export to {self.metrics_out!r} failed "
                f"({type(exc).__name__}: {exc}); export disabled",
                ExperimentWarning,
                stacklevel=2,
            )
            self.metrics_out = None

    # -- lifecycle -----------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self._tick()
            except Exception:  # pragma: no cover — belt and braces
                return

    def start(self) -> "StatusSampler":
        self._thread = threading.Thread(
            target=self._run, name="repro-status-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread and take one last snapshot (never raises)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        try:
            self._tick()
        except Exception:  # pragma: no cover
            pass

    def __enter__(self) -> "StatusSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def read_status(path: str) -> List[Dict[str, Any]]:
    """Read a status stream, tolerating a torn tail (it is live).

    Unlike the event log, a status file is *expected* to be mid-append
    when read, so any trailing malformed line is dropped silently; a
    malformed line in the middle, a missing header, or a format
    mismatch raises :class:`~repro.errors.SerializationError`.
    """
    try:
        with open(path) as fp:
            text = fp.read()
    except (OSError, UnicodeDecodeError, ValueError) as exc:
        raise SerializationError(
            f"cannot read status stream {path!r}: {exc}"
        ) from exc
    events: List[Dict[str, Any]] = []
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                break  # live torn tail
            raise SerializationError(
                f"invalid JSON on line {lineno} of {path!r}: {exc}"
            ) from exc
        if not isinstance(event, dict) or event.get("kind") not in STATUS_KINDS:
            raise SerializationError(
                f"invalid status line {lineno} of {path!r}: "
                f"unknown kind {event.get('kind') if isinstance(event, dict) else event!r}"
            )
        events.append(event)
    if not events:
        raise SerializationError(f"empty status stream: {path!r}")
    header = events[0]
    if header.get("kind") != "header":
        raise SerializationError(
            f"status stream {path!r} does not start with a header line"
        )
    if header.get("format") != STATUS_FORMAT:
        raise SerializationError(
            f"{path!r} is not a status stream "
            f"(format {header.get('format')!r})"
        )
    if header.get("version") != STATUS_VERSION:
        raise SerializationError(
            f"unsupported status version {header.get('version')!r} "
            f"in {path!r}"
        )
    return events
