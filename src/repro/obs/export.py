"""Trace export: the JSONL event log and the Chrome-trace converter.

The **event log** is one run's telemetry serialized as append-only JSON
Lines — the same shape as the checkpoint journal it sits next to: a
header line pinning format and version, then one self-describing event
object per line (``span``, ``metrics``, ``resource``, ``failure``,
``summary``). Spans are flattened parent-before-child with integer ids,
so a consumer can stream the file without reassembling trees, and
:func:`read_events` validates every line against the schema on the way
in.

The **Chrome-trace converter** (:func:`chrome_trace`) turns an event log
into the Trace Event Format that ``chrome://tracing`` and Perfetto load:
complete (``"ph": "X"``) slices per span on one track per process,
counter tracks for worker resource samples, and process-name metadata.
Timestamps are rebased to the run's first span so the viewer opens at
t=0.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Any, Dict, IO, List, Optional, Tuple

from repro.errors import SerializationError
from repro.obs.runtime import Telemetry
from repro.obs.spans import Span

TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

#: Event kinds a log line may carry.
EVENT_KINDS = ("header", "span", "metrics", "resource", "failure", "summary")


def fsync_directory(directory: str) -> None:
    """Flush a directory's entries to disk, best-effort.

    ``fsync`` on a *file* persists its contents, not the directory entry
    naming it: after a crash, a freshly created (or renamed-into-place)
    file can vanish even though its bytes were synced. Syncing the
    parent directory closes that window. Platforms or filesystems that
    refuse ``open``/``fsync`` on directories are silently tolerated —
    this only ever *adds* durability.
    """
    try:
        fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + fsync + replace).

    Either the old content or the complete new content exists at ``path``
    at every instant; a crash mid-write leaves the destination untouched
    and no partial temp file behind; the parent directory is synced
    after the rename so the *name* survives a crash too. (Shared with
    :mod:`repro.feast.persistence`, which re-exports it.)
    """
    path = os.path.abspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fp:
            fp.write(text)
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp, path)
        fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def make_run_id() -> str:
    """A short, filesystem-safe id distinguishing runs on one machine."""
    return f"{int(time.time() * 1000):x}-{os.getpid():x}"


# ----------------------------------------------------------------------
# Telemetry -> events
# ----------------------------------------------------------------------
def _flatten_spans(
    spans: List[Span], events: List[Dict[str, Any]], parent: Optional[int],
    next_id: List[int],
) -> None:
    for span in spans:
        span_id = next_id[0]
        next_id[0] += 1
        events.append({
            "kind": "span",
            "id": span_id,
            "parent": parent,
            "name": span.name,
            "ts": span.start,
            "dur": max(0.0, span.duration),
            "pid": span.pid,
            "attrs": dict(span.attrs),
        })
        _flatten_spans(span.children, events, span_id, next_id)


def events_from_telemetry(
    telemetry: Telemetry,
    experiment: str,
    summary: Optional[Dict[str, Any]] = None,
    failures: Optional[List[Dict[str, Any]]] = None,
    run_id: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Serialize one run's telemetry as event-log lines (header first)."""
    events: List[Dict[str, Any]] = [{
        "kind": "header",
        "format": TRACE_FORMAT,
        "version": TRACE_VERSION,
        "experiment": experiment,
        "run_id": run_id if run_id is not None else make_run_id(),
        "created": time.time(),
    }]
    _flatten_spans(telemetry.spans.finished(), events, None, [0])
    for sample in telemetry.resources:
        events.append({"kind": "resource", **sample.as_dict()})
    for failure in failures or []:
        events.append({"kind": "failure", **failure})
    if telemetry.metrics:
        events.append({"kind": "metrics", **telemetry.metrics.as_dict()})
    if summary is not None:
        events.append({"kind": "summary", **summary})
    return events


class EventLog:
    """Append-only JSONL event log writer (one run per file).

    Mirrors the checkpoint journal's durability contract: the header is
    written on open, every :meth:`emit` is flushed, and :meth:`close`
    fsyncs, so a crashed run leaves at worst one truncated trailing line
    — which :func:`read_events` tolerates with ``allow_partial=True``.
    """

    def __init__(
        self,
        path: str,
        experiment: str,
        run_id: Optional[str] = None,
        created: Optional[float] = None,
    ) -> None:
        self.path = os.path.abspath(path)
        self.run_id = run_id if run_id is not None else make_run_id()
        directory = os.path.dirname(self.path) or "."
        if not os.path.isdir(directory):
            raise SerializationError(
                f"event-log directory does not exist: {directory!r}"
            )
        self._fp: Optional[IO[str]] = open(self.path, "w")
        self.emit({
            "kind": "header",
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "experiment": experiment,
            "run_id": self.run_id,
            "created": created if created is not None else time.time(),
        })

    def emit(self, event: Dict[str, Any]) -> None:
        """Append one event line (flushed)."""
        if self._fp is None:
            raise SerializationError(f"event log {self.path!r} is closed")
        self._fp.write(json.dumps(event, sort_keys=True) + "\n")
        self._fp.flush()

    def emit_all(self, events: List[Dict[str, Any]]) -> None:
        for event in events:
            self.emit(event)

    def close(self) -> None:
        if self._fp is not None:
            self._fp.flush()
            os.fsync(self._fp.fileno())
            self._fp.close()
            self._fp = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_events(
    path: str,
    telemetry: Telemetry,
    experiment: str,
    summary: Optional[Dict[str, Any]] = None,
    failures: Optional[List[Dict[str, Any]]] = None,
    run_id: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Write a finished run's telemetry to ``path`` as an event log."""
    events = events_from_telemetry(
        telemetry, experiment,
        summary=summary, failures=failures, run_id=run_id,
    )
    header = events[0]
    with EventLog(
        path, experiment,
        run_id=header["run_id"], created=header["created"],
    ) as log:
        log.emit_all(events[1:])
    return events


# ----------------------------------------------------------------------
# Validation and reading
# ----------------------------------------------------------------------
def _require(condition: bool, lineno: int, message: str) -> None:
    if not condition:
        raise SerializationError(
            f"invalid trace event on line {lineno}: {message}"
        )


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_event(
    event: Dict[str, Any], lineno: int, seen_span_ids: set
) -> None:
    """Validate one event-log line against the schema; raises on error."""
    _require(isinstance(event, dict), lineno, "not an object")
    kind = event.get("kind")
    _require(kind in EVENT_KINDS, lineno, f"unknown kind {kind!r}")
    if kind == "header":
        _require(
            event.get("format") == TRACE_FORMAT, lineno,
            f"format is {event.get('format')!r}, not {TRACE_FORMAT!r}",
        )
        _require(
            event.get("version") == TRACE_VERSION, lineno,
            f"unsupported version {event.get('version')!r}",
        )
        _require(
            isinstance(event.get("experiment"), str), lineno,
            "header misses experiment name",
        )
    elif kind == "span":
        for key in ("id", "name", "ts", "dur", "pid", "attrs"):
            _require(key in event, lineno, f"span misses {key!r}")
        _require(
            isinstance(event["id"], int), lineno, "span id must be int"
        )
        _require(
            _is_number(event["ts"]) and _is_number(event["dur"]),
            lineno, "span ts/dur must be numbers",
        )
        _require(event["dur"] >= 0, lineno, "span dur must be >= 0")
        _require(
            isinstance(event["attrs"], dict), lineno,
            "span attrs must be an object",
        )
        parent = event.get("parent")
        _require(
            parent is None or parent in seen_span_ids, lineno,
            f"span parent {parent!r} not seen yet "
            "(spans must be parent-before-child)",
        )
        _require(
            event["id"] not in seen_span_ids, lineno,
            f"duplicate span id {event['id']}",
        )
        seen_span_ids.add(event["id"])
    elif kind == "metrics":
        for key in ("counters", "gauges", "histograms"):
            _require(
                isinstance(event.get(key), dict), lineno,
                f"metrics misses object {key!r}",
            )
        for name, value in {
            **event["counters"], **event["gauges"]
        }.items():
            _require(
                _is_number(value), lineno,
                f"metric {name!r} value must be a number",
            )
        for name, hist in event["histograms"].items():
            _require(
                isinstance(hist, dict)
                and isinstance(hist.get("buckets"), list)
                and isinstance(hist.get("counts"), list),
                lineno, f"histogram {name!r} malformed",
            )
            _require(
                len(hist["counts"]) == len(hist["buckets"]) + 1,
                lineno,
                f"histogram {name!r} needs len(buckets)+1 counts",
            )
            _require(
                sum(hist["counts"]) == hist.get("count"), lineno,
                f"histogram {name!r} counts do not sum to count",
            )
    elif kind == "resource":
        for key in ("ts", "rss_max_kb", "cpu_user_s", "cpu_system_s", "pid"):
            _require(
                _is_number(event.get(key)), lineno,
                f"resource misses numeric {key!r}",
            )
    # "failure" and "summary" carry engine-defined payloads; the kind tag
    # is the whole contract.


def validate_events(events: List[Dict[str, Any]]) -> None:
    """Validate a whole event sequence (header first, spans ordered)."""
    if not events:
        raise SerializationError("empty trace: no header event")
    if events[0].get("kind") != "header":
        raise SerializationError(
            "first trace event must be the header, got "
            f"{events[0].get('kind')!r}"
        )
    seen_span_ids: set = set()
    for lineno, event in enumerate(events, start=1):
        if lineno > 1 and event.get("kind") == "header":
            raise SerializationError(
                f"invalid trace event on line {lineno}: duplicate header"
            )
        validate_event(event, lineno, seen_span_ids)


def read_events(
    path: str, allow_partial: bool = False
) -> List[Dict[str, Any]]:
    """Read and validate an event log; returns the event dicts.

    ``allow_partial=True`` tolerates one truncated trailing line (a run
    that crashed mid-append); anything else malformed raises
    :class:`SerializationError`.
    """
    try:
        with open(path) as fp:
            text = fp.read()
    except (OSError, UnicodeDecodeError, ValueError) as exc:
        # UnicodeDecodeError covers binary garbage handed to `repro
        # report` (a .ckpt journal, a truncated pickle); surface it as
        # the same clean one-line error as an unreadable file.
        raise SerializationError(
            f"cannot read event log {path!r}: {exc}"
        ) from exc
    events: List[Dict[str, Any]] = []
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if (
                allow_partial
                and lineno == len(lines)
                and not text.endswith("\n")
            ):
                break
            raise SerializationError(
                f"invalid JSON on line {lineno} of {path!r}: {exc}"
            ) from exc
    validate_events(events)
    return events


# ----------------------------------------------------------------------
# Chrome trace (Perfetto / chrome://tracing)
# ----------------------------------------------------------------------
def chrome_trace(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert an event log to Chrome Trace Event Format (JSON object).

    Spans become complete ``"X"`` slices (microsecond timestamps rebased
    to the earliest span), resource samples and ``supervision.*``
    counters become ``"C"`` counter tracks, and each process gets a
    ``process_name`` metadata record.
    The result loads directly in Perfetto or ``chrome://tracing``.
    """
    validate_events(events)
    header = events[0]
    spans = [e for e in events if e.get("kind") == "span"]
    resources = [e for e in events if e.get("kind") == "resource"]
    base = min(
        [e["ts"] for e in spans] + [e["ts"] for e in resources],
        default=0.0,
    )
    trace_events: List[Dict[str, Any]] = []
    pids = sorted(
        {e["pid"] for e in spans} | {e["pid"] for e in resources}
    )
    parent_pid = min(
        (e["pid"] for e in spans if e.get("parent") is None),
        default=pids[0] if pids else 0,
    )
    for pid in pids:
        name = "experiment" if pid == parent_pid else f"worker-{pid}"
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
    for e in spans:
        trace_events.append({
            "ph": "X",
            "name": e["name"],
            "cat": "repro",
            "ts": (e["ts"] - base) * 1e6,
            "dur": e["dur"] * 1e6,
            "pid": e["pid"],
            "tid": 0,
            "args": dict(e["attrs"]),
        })
    for e in resources:
        ts = (e["ts"] - base) * 1e6
        trace_events.append({
            "ph": "C", "name": "rss_max_kb", "pid": e["pid"], "tid": 0,
            "ts": ts, "args": {"kb": e["rss_max_kb"]},
        })
        trace_events.append({
            "ph": "C", "name": "cpu_seconds", "pid": e["pid"], "tid": 0,
            "ts": ts,
            "args": {
                "user": e["cpu_user_s"], "system": e["cpu_system_s"],
            },
        })
    # Supervision counters are run totals (no timeline of their own), so
    # plot each as a counter track stamped at the end of the trace —
    # Perfetto then shows fault-tolerance incidents next to the spans.
    end = max(
        [(e["ts"] - base + e["dur"]) * 1e6 for e in spans], default=0.0
    )
    for e in events:
        if e.get("kind") != "metrics":
            continue
        for name, value in sorted((e.get("counters") or {}).items()):
            if not name.startswith("supervision."):
                continue
            trace_events.append({
                "ph": "C", "name": name, "pid": parent_pid, "tid": 0,
                "ts": end, "args": {"count": value},
            })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "format": TRACE_FORMAT,
            "experiment": header.get("experiment"),
            "run_id": header.get("run_id"),
        },
    }


def write_chrome_trace(path: str, events: List[Dict[str, Any]]) -> None:
    """Convert ``events`` and write the Chrome trace JSON atomically."""
    atomic_write_text(path, json.dumps(chrome_trace(events)))
