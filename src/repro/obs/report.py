"""Human-readable run reports from a telemetry event log.

``repro report <events.jsonl>`` renders what a run did: wall-clock vs.
summed CPU-side phase time (and the parallel efficiency between them),
the slowest chunks, metric counters, histogram summaries, and per-worker
resource use. Pure text — the machine-readable views are the event log
itself and the Chrome-trace export.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.export import validate_events

#: Chunks listed in the "slowest" table.
TOP_CHUNKS = 8


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:.0f}s"
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def _histogram_line(name: str, hist: Dict[str, Any]) -> str:
    n = hist["count"]
    if not n:
        return f"  {name:<36} (empty)"
    mean = hist["sum"] / n
    # Histograms carry no unit; by convention duration-valued metrics put
    # "seconds" in their name (phase.*.seconds, distribute.seconds.nNN).
    # Everything else is a plain number (node counts, slice counts, ...).
    if "seconds" in name:
        fmt = _fmt_seconds
    else:
        fmt = "{:g}".format
    return (
        f"  {name:<36} n={n:<7} mean={fmt(mean):>9} "
        f"min={fmt(hist['min']):>9} "
        f"max={fmt(hist['max']):>9}"
    )


def render_run_report(events: List[Dict[str, Any]]) -> str:
    """Render one event log as a human-readable report."""
    validate_events(events)
    header = events[0]
    spans = [e for e in events if e["kind"] == "span"]
    metrics: Optional[Dict[str, Any]] = next(
        (e for e in events if e["kind"] == "metrics"), None
    )
    summary = next((e for e in events if e["kind"] == "summary"), None)
    resources = [e for e in events if e["kind"] == "resource"]
    failures = [e for e in events if e["kind"] == "failure"]

    lines: List[str] = [
        f"run report: {header.get('experiment')} "
        f"(run {header.get('run_id')})",
    ]

    roots = [e for e in spans if e.get("parent") is None]
    wall = sum(e["dur"] for e in roots)
    phase_totals: Dict[str, float] = {}
    for e in spans:
        if e["name"] in ("generate", "distribute", "schedule"):
            phase_totals[e["name"]] = (
                phase_totals.get(e["name"], 0.0) + e["dur"]
            )
    busy = sum(phase_totals.values())
    jobs = (summary or {}).get("jobs")
    lines.append(f"  wall-clock elapsed      {_fmt_seconds(wall):>10}")
    lines.append(
        f"  summed phase time       {_fmt_seconds(busy):>10}  "
        "(CPU-side, across workers)"
    )
    if jobs and wall > 0:
        efficiency = busy / (wall * jobs)
        lines.append(
            f"  parallel efficiency     {efficiency:>9.0%}  "
            f"({jobs} worker{'s' if jobs != 1 else ''})"
        )
    for phase in ("generate", "distribute", "schedule"):
        if phase in phase_totals:
            seconds = phase_totals[phase]
            share = seconds / busy if busy else 0.0
            lines.append(
                f"    {phase:<12} {_fmt_seconds(seconds):>10}  "
                f"({share:5.1%})"
            )

    chunks = sorted(
        (e for e in spans if e["name"] == "chunk"),
        key=lambda e: -e["dur"],
    )
    if chunks:
        lines.append("")
        lines.append(f"  slowest chunks (of {len(chunks)}):")
        for e in chunks[:TOP_CHUNKS]:
            attrs = e["attrs"]
            where = (
                f"({attrs.get('scenario')}, graph {attrs.get('index')})"
            )
            lines.append(
                f"    {where:<24} {_fmt_seconds(e['dur']):>10}  "
                f"pid {e['pid']}"
            )

    supervision = {
        name[len("supervision."):]: value
        for name, value in ((metrics or {}).get("counters") or {}).items()
        if name.startswith("supervision.") and value
    }
    if supervision:
        labels = {
            "stalls_detected": "shards stalled (no journal progress)",
            "kills_escalated": "SIGTERM ignored, escalated to SIGKILL",
            "relaunches": "worker relaunches",
            "shards_failed_over": "shards failed over to survivors",
            "chunks_reassigned": "chunks reassigned by failover",
            "chunks_replayed": "chunks replayed from journals",
        }
        lines.append("")
        lines.append("  supervision (fault tolerance):")
        for name, value in sorted(supervision.items()):
            label = labels.get(name, name)
            lines.append(f"    {label:<40} {value:>8g}")

    if metrics is not None:
        counters = metrics["counters"]
        if counters:
            lines.append("")
            lines.append("  counters:")
            for name, value in sorted(counters.items()):
                lines.append(f"    {name:<36} {value:>12g}")
        gauges = metrics["gauges"]
        if gauges:
            lines.append("")
            lines.append("  gauges (max across processes):")
            for name, value in sorted(gauges.items()):
                lines.append(f"    {name:<36} {value:>12g}")
        if metrics["histograms"]:
            lines.append("")
            lines.append("  histograms:")
            for name, hist in sorted(metrics["histograms"].items()):
                lines.append("  " + _histogram_line(name, hist))

    if resources:
        lines.append("")
        lines.append("  worker resources (per chunk):")
        by_pid: Dict[int, Dict[str, float]] = {}
        for e in resources:
            agg = by_pid.setdefault(
                e["pid"], {"rss": 0.0, "cpu": 0.0, "chunks": 0}
            )
            agg["rss"] = max(agg["rss"], e["rss_max_kb"])
            agg["cpu"] += e["cpu_user_s"] + e["cpu_system_s"]
            agg["chunks"] += 1
        for pid in sorted(by_pid):
            agg = by_pid[pid]
            lines.append(
                f"    pid {pid:<8} chunks={int(agg['chunks']):<5} "
                f"cpu={_fmt_seconds(agg['cpu']):>9} "
                f"peak rss={agg['rss'] / 1024:.1f}MB"
            )

    if failures:
        lines.append("")
        lines.append(f"  fault events ({len(failures)}):")
        for e in failures[:10]:
            lines.append(
                f"    {e.get('fault_kind', '?'):<12} "
                f"({e.get('scenario')}, graph {e.get('index')}) "
                f"{e.get('message', '')[:60]}"
            )
        if len(failures) > 10:
            lines.append(f"    ... {len(failures) - 10} more")

    if summary is not None:
        lines.append("")
        lines.append("  summary:")
        for key in sorted(summary):
            if key == "kind":
                continue
            lines.append(f"    {key:<24} {summary[key]}")

    return "\n".join(lines)
