"""Structured span tracing: nested, picklable timing spans.

A :class:`Span` is one timed region of the pipeline — ``run``,
``scenario``, ``chunk``, ``trial``, ``generate``/``distribute``/
``schedule``, a branch-and-bound search — with a wall-clock start
timestamp, a duration, free-form attributes, and child spans. Spans are
plain picklable data: worker processes record them locally with a
:class:`SpanRecorder`, ship the finished roots back alongside their
chunk results, and the parent adopts them into its own tree
(:meth:`SpanRecorder.adopt`), so one run yields one merged span forest
regardless of how many processes produced it.

Timestamps are epoch seconds (``time.time``) so spans recorded by
different processes on the same machine line up on one timeline — the
property the Chrome-trace export (:mod:`repro.obs.export`) relies on.
Durations are measured with ``time.perf_counter`` for resolution.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ExperimentError


@dataclass
class Span:
    """One timed region; a node of the span tree (picklable).

    ``start`` is epoch seconds; ``duration`` is elapsed seconds (-1.0
    while the span is still open). ``attrs`` carries scalar annotations
    (counts, labels, resource numbers); ``pid`` records the process that
    measured the span, which becomes the Chrome-trace track.
    """

    name: str
    start: float
    duration: float = -1.0
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    pid: int = field(default_factory=os.getpid)

    @property
    def closed(self) -> bool:
        return self.duration >= 0.0

    def annotate(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attrs.update(attrs)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every span named ``name`` in this subtree, pre-order."""
        return [s for s in self.walk() if s.name == name]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "pid": self.pid,
            "children": [c.as_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        try:
            return cls(
                name=str(data["name"]),
                start=float(data["start"]),
                duration=float(data["duration"]),
                attrs=dict(data.get("attrs", {})),
                pid=int(data.get("pid", 0)),
                children=[
                    cls.from_dict(c) for c in data.get("children", [])
                ],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(f"malformed span: {exc}") from exc


class SpanRecorder:
    """Records a forest of nested spans via a context-manager API.

    One recorder instruments one process's view of one run. ``span()``
    opens a child of the innermost open span (or a new root), times the
    block, and closes it on exit — exceptions still close the span, with
    an ``error`` attribute naming the exception type. ``adopt()`` grafts
    spans recorded elsewhere (another process, a pickled payload) under
    the innermost open span, which is how worker chunks merge into the
    parent's ``run`` span.
    """

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def open(self, name: str, **attrs: Any) -> Span:
        """Open a span (prefer the :meth:`span` context manager)."""
        span = Span(name=name, start=time.time(), attrs=dict(attrs))
        span._began = time.perf_counter()  # type: ignore[attr-defined]
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def close(self, span: Span) -> None:
        """Close ``span``; it must be the innermost open span."""
        if not self._stack or self._stack[-1] is not span:
            raise ExperimentError(
                f"span {span.name!r} closed out of order; "
                f"innermost open span is "
                f"{self._stack[-1].name if self._stack else None!r}"
            )
        self._stack.pop()
        began = getattr(span, "_began", None)
        if began is not None:
            span.duration = time.perf_counter() - began
            del span._began  # keep the span picklable / comparable
        else:
            span.duration = max(0.0, time.time() - span.start)

    def span(self, name: str, **attrs: Any) -> "_SpanContext":
        """Time a block as a span named ``name``.

        Returns a hand-rolled context manager rather than a
        ``@contextmanager`` generator: spans open on the per-trial hot
        path, and the generator protocol costs several times more per
        entry/exit than a plain ``__enter__``/``__exit__`` pair.
        """
        return _SpanContext(self, name, attrs)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op if none)."""
        if self._stack:
            self._stack[-1].annotate(**attrs)

    def _open_fast(self, name: str, attrs: Dict[str, Any]) -> Span:
        """:meth:`open` without the kwargs repack (hot path)."""
        span = Span(name=name, start=time.time(), attrs=attrs)
        span._began = time.perf_counter()  # type: ignore[attr-defined]
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def adopt(self, spans: List[Span]) -> None:
        """Graft externally recorded spans into this recorder's tree.

        They become children of the innermost open span, or new roots if
        nothing is open. The spans must be closed (a worker only ships
        finished spans).
        """
        for span in spans:
            if not span.closed:
                raise ExperimentError(
                    f"cannot adopt open span {span.name!r}"
                )
        target = self._stack[-1].children if self._stack else self.roots
        target.extend(spans)

    def finished(self) -> List[Span]:
        """The recorded roots; raises if any span is still open."""
        if self._stack:
            raise ExperimentError(
                "spans still open: "
                + " > ".join(s.name for s in self._stack)
            )
        return list(self.roots)


class _SpanContext:
    """Context manager for one span open/close (see :meth:`SpanRecorder.span`)."""

    __slots__ = ("_recorder", "_name", "_attrs", "_span")

    def __init__(
        self, recorder: SpanRecorder, name: str, attrs: Dict[str, Any]
    ) -> None:
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._recorder._open_fast(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._recorder.close(self._span)
        return False
