"""The ``repro top`` status board: render a live status stream as text.

Reads the ``status.jsonl`` a running (or finished) sweep appends to and
renders a terminal snapshot: header, progress bar with rate and ETA, a
sparkline of recent throughput, per-shard liveness rows (from the fleet
probe), and the tail of supervision incidents. ``--once`` prints one
frame; ``--follow`` redraws until the stream's ``final`` line appears.

Pure functions over parsed status events — the CLI owns the terminal;
this module owns the text.
"""

from __future__ import annotations

import glob
import os
import time
from typing import Any, Dict, List, Optional

from repro.errors import SerializationError
from repro.obs.live import STATUS_SUFFIX, read_status

#: Sparkline glyphs, lowest to highest.
SPARKS = "▁▂▃▄▅▆▇█"

#: Width of the progress bar, in cells.
BAR_WIDTH = 30

#: Supervision incidents shown in the tail.
INCIDENT_TAIL = 6

#: Snapshots feeding the throughput sparkline.
SPARK_WINDOW = 24


def find_status_file(path: str) -> str:
    """Resolve a status-stream path from a file or a trace directory.

    A directory resolves to its most recently modified
    ``*.status.jsonl``; a clear :class:`~repro.errors.SerializationError`
    explains an empty directory or a missing file.
    """
    if os.path.isdir(path):
        candidates = sorted(
            glob.glob(os.path.join(path, "*" + STATUS_SUFFIX)),
            key=lambda p: os.path.getmtime(p),
        )
        if not candidates:
            raise SerializationError(
                f"no {STATUS_SUFFIX} stream in {path!r} — was the run "
                "started with --trace?"
            )
        return candidates[-1]
    if not os.path.exists(path):
        raise SerializationError(f"no such status stream: {path!r}")
    return path


def sparkline(values: List[float]) -> str:
    """Render values as a fixed-height unicode sparkline."""
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return SPARKS[0] * len(values)
    out = []
    for v in values:
        idx = int(v / top * (len(SPARKS) - 1) + 0.5)
        out.append(SPARKS[max(0, min(idx, len(SPARKS) - 1))])
    return "".join(out)


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.1f}h"


def _shard_rows(snapshot: Dict[str, Any]) -> List[Dict[str, Any]]:
    fleet = (snapshot.get("probes") or {}).get("fleet") or {}
    rows = fleet.get("slots")
    return rows if isinstance(rows, list) else []


def render_board(
    events: List[Dict[str, Any]], now: Optional[float] = None
) -> str:
    """Render one board frame from a parsed status stream."""
    if now is None:
        now = time.time()
    header = events[0]
    statuses = [e for e in events if e["kind"] == "status"]
    incidents = [e for e in events if e["kind"] == "supervision"]
    final = next((e for e in events if e["kind"] == "final"), None)
    progress_events = [e for e in events if e["kind"] == "progress"]

    lines: List[str] = []
    state = "finished" if final is not None else "running"
    last_ts = events[-1].get("ts", now)
    age = max(0.0, now - last_ts)
    staleness = "" if final is not None else f", last update {age:.0f}s ago"
    lines.append(
        f"repro top — {header.get('experiment')} "
        f"(run {header.get('run_id')}, pid {header.get('pid')}) "
        f"[{state}{staleness}]"
    )

    snap = statuses[-1] if statuses else None
    if snap is None:
        lines.append(
            f"  no status snapshots yet "
            f"({len(progress_events)} progress events)"
        )
        return "\n".join(lines)

    trials = snap.get("trials", {})
    done, total = trials.get("done", 0), trials.get("total", 0)
    frac = done / total if total else 0.0
    filled = int(frac * BAR_WIDTH + 0.5)
    bar = "#" * filled + "-" * (BAR_WIDTH - filled)
    throughput = snap.get("throughput", {})
    lines.append(
        f"  [{bar}] {done}/{total} trials ({frac:6.1%})  "
        f"{throughput.get('recent', 0.0):.1f}/s  "
        f"eta {_fmt_eta(snap.get('eta_seconds'))}"
    )

    recent = [
        s.get("throughput", {}).get("recent", 0.0)
        for s in statuses[-SPARK_WINDOW:]
    ]
    lines.append(
        f"  throughput {sparkline(recent)} "
        f"(overall {throughput.get('overall', 0.0):.1f}/s, "
        f"wall {snap.get('wall_elapsed', 0.0):.1f}s)"
    )

    phases = snap.get("phases") or {}
    if any(phases.values()):
        busy = sum(phases.values()) or 1.0
        parts = [
            f"{name} {seconds:.2f}s ({seconds / busy:.0%})"
            for name, seconds in sorted(phases.items())
            if seconds
        ]
        lines.append("  phases     " + "  ".join(parts))

    faults = snap.get("faults") or {}
    if any(faults.values()):
        parts = [
            f"{name}={value:g}"
            for name, value in sorted(faults.items())
            if value
        ]
        lines.append("  faults     " + "  ".join(parts))

    rows = _shard_rows(snap)
    if rows:
        lines.append("")
        lines.append(
            f"  {'SHARD':<16} {'STATE':<12} {'PID':>7} {'LAUNCH':>6} "
            f"{'RECORDS':>8} {'HEARTBEAT':>10}"
        )
        for row in rows:
            hb = row.get("heartbeat_age")
            hb_cell = "--" if hb is None else f"{hb:.1f}s"
            pid = row.get("pid")
            lines.append(
                f"  {str(row.get('ident', '?')):<16} "
                f"{str(row.get('state', '?')):<12} "
                f"{str(pid if pid is not None else '--'):>7} "
                f"{row.get('launches', 0):>6} "
                f"{row.get('records_seen', 0):>8} "
                f"{hb_cell:>10}"
            )

    if incidents:
        lines.append("")
        lines.append(f"  supervision incidents ({len(incidents)}):")
        t0 = header.get("ts", 0.0)
        for e in incidents[-INCIDENT_TAIL:]:
            at = e.get("ts", 0.0) - t0
            lines.append(
                f"    t+{at:6.1f}s {e.get('event', '?'):<16} "
                f"{e.get('detail', '')}"
            )
        if len(incidents) > INCIDENT_TAIL:
            lines.append(
                f"    ... {len(incidents) - INCIDENT_TAIL} earlier"
            )

    if final is not None:
        lines.append("")
        extras = {
            k: v for k, v in final.items()
            if k not in ("kind", "seq", "ts")
        }
        tail = "  ".join(f"{k}={v}" for k, v in sorted(extras.items()))
        lines.append(f"  final: {tail}" if tail else "  final")
    return "\n".join(lines)


def follow(
    path: str,
    render,
    interval: float = 1.0,
    clear: str = "\x1b[2J\x1b[H",
    max_frames: Optional[int] = None,
) -> int:
    """Redraw the board until the stream finishes. Returns frame count.

    ``render`` is called with each frame's text (the CLI passes a
    printer that prefixes the ANSI clear). A vanished or unreadable
    stream raises :class:`~repro.errors.SerializationError` out of the
    loop; ``max_frames`` bounds the loop for tests.
    """
    frames = 0
    while True:
        events = read_status(path)
        render(clear + render_board(events))
        frames += 1
        if any(e["kind"] == "final" for e in events):
            return frames
        if max_frames is not None and frames >= max_frames:
            return frames
        time.sleep(interval)
