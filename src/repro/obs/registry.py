"""Persistent run registry: the project's perf trajectory on disk.

Every traced run appends one JSON line describing itself — run id,
experiment, config fingerprint, backend/jobs/shards, wall-clock,
per-phase timings, throughput, supervision counters, and a digest of
the records it produced — to ``runs.jsonl`` under the registry
directory (default :data:`DEFAULT_REGISTRY_DIR`). The file uses the
checkpoint journal's durability idiom: one ``O_APPEND`` write per
record, fsync, so concurrent runs on one machine interleave whole
lines and a crash can at worst tear the final line (which
:meth:`RunRegistry.load` tolerates).

On top of the log sit the comparison tools behind ``repro runs``:
:func:`diff_runs` compares two registered runs phase by phase, and
:meth:`RunDiff.regressions` applies a percentage gate — CI appends a
run, diffs it against a chosen baseline, and fails the build on a
regression. The records digest doubles as a cheap cross-run
bit-identity check: two runs of the same fingerprint must agree.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import SerializationError
from repro.obs.export import fsync_directory

#: Default registry location, relative to the working directory.
DEFAULT_REGISTRY_DIR = os.path.join(".repro", "registry")

#: Registry record schema version.
REGISTRY_VERSION = 1

#: Phases below this baseline (seconds) are ignored by the regression
#: gate — percentage deltas on sub-10ms phases are timer noise.
MIN_GATE_SECONDS = 0.01


def records_digest(records: Sequence[Any]) -> str:
    """Order-sensitive blake2b digest of a run's trial records.

    Hashes the canonical JSON of each record's dict form, so two runs
    produced byte-identical records iff their digests match — the same
    contract the golden corpus asserts, persisted per run.
    """
    h = hashlib.blake2b(digest_size=16)
    for record in records:
        data = record.as_dict() if hasattr(record, "as_dict") else record
        h.update(
            json.dumps(data, sort_keys=True, separators=(",", ":")).encode()
        )
        h.update(b"\n")
    return h.hexdigest()


@dataclass
class RunRecord:
    """One registered run (plain JSON-serializable data)."""

    run_id: str
    experiment: str
    fingerprint: str = ""
    backend: str = ""
    jobs: int = 1
    shards: int = 0
    started: float = 0.0
    wall_seconds: float = 0.0
    n_trials: int = 0
    n_records: int = 0
    streamed_trials: int = 0
    replayed_trials: int = 0
    failures: int = 0
    retries: int = 0
    quarantined: int = 0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    supervision: Dict[str, float] = field(default_factory=dict)
    records_digest: str = ""
    trace_path: str = ""
    version: int = REGISTRY_VERSION

    @property
    def throughput(self) -> float:
        """Trials per wall-clock second (0 when unmeasured)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.n_trials / self.wall_seconds

    def as_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "run_id": self.run_id,
            "experiment": self.experiment,
            "fingerprint": self.fingerprint,
            "backend": self.backend,
            "jobs": self.jobs,
            "shards": self.shards,
            "started": self.started,
            "wall_seconds": self.wall_seconds,
            "n_trials": self.n_trials,
            "n_records": self.n_records,
            "streamed_trials": self.streamed_trials,
            "replayed_trials": self.replayed_trials,
            "failures": self.failures,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "phase_seconds": dict(self.phase_seconds),
            "supervision": dict(self.supervision),
            "records_digest": self.records_digest,
            "trace_path": self.trace_path,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        try:
            return cls(
                run_id=str(data["run_id"]),
                experiment=str(data["experiment"]),
                fingerprint=str(data.get("fingerprint", "")),
                backend=str(data.get("backend", "")),
                jobs=int(data.get("jobs", 1)),
                shards=int(data.get("shards", 0)),
                started=float(data.get("started", 0.0)),
                wall_seconds=float(data.get("wall_seconds", 0.0)),
                n_trials=int(data.get("n_trials", 0)),
                n_records=int(data.get("n_records", 0)),
                streamed_trials=int(data.get("streamed_trials", 0)),
                replayed_trials=int(data.get("replayed_trials", 0)),
                failures=int(data.get("failures", 0)),
                retries=int(data.get("retries", 0)),
                quarantined=int(data.get("quarantined", 0)),
                phase_seconds={
                    str(k): float(v)
                    for k, v in (data.get("phase_seconds") or {}).items()
                },
                supervision={
                    str(k): float(v)
                    for k, v in (data.get("supervision") or {}).items()
                },
                records_digest=str(data.get("records_digest", "")),
                trace_path=str(data.get("trace_path", "")),
                version=int(data.get("version", REGISTRY_VERSION)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(
                f"malformed registry record: {exc}"
            ) from exc


class RunRegistry:
    """The append-only ``runs.jsonl`` log under one registry directory."""

    def __init__(self, directory: str = DEFAULT_REGISTRY_DIR) -> None:
        self.directory = os.path.abspath(directory)
        self.path = os.path.join(self.directory, "runs.jsonl")

    def append(self, record: RunRecord) -> None:
        """Durably append one run record (single O_APPEND write + fsync)."""
        os.makedirs(self.directory, exist_ok=True)
        line = json.dumps(record.as_dict(), sort_keys=True) + "\n"
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line.encode())
            os.fsync(fd)
        finally:
            os.close(fd)
        fsync_directory(self.directory)

    def load(self) -> List[RunRecord]:
        """All registered runs, oldest first; tolerates a torn tail.

        A missing registry is an empty one. A malformed line *anywhere
        but the tail* raises :class:`~repro.errors.SerializationError`
        — the tail can legitimately be torn by a crash mid-append, the
        middle cannot.
        """
        try:
            with open(self.path) as fp:
                text = fp.read()
        except FileNotFoundError:
            return []
        except (OSError, UnicodeDecodeError, ValueError) as exc:
            raise SerializationError(
                f"cannot read run registry {self.path!r}: {exc}"
            ) from exc
        records: List[RunRecord] = []
        lines = text.splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines):
                    break  # torn tail from a crash mid-append
                raise SerializationError(
                    f"invalid JSON on line {lineno} of {self.path!r}: {exc}"
                ) from exc
            if not isinstance(data, dict):
                raise SerializationError(
                    f"registry line {lineno} of {self.path!r} is not an "
                    "object"
                )
            records.append(RunRecord.from_dict(data))
        return records

    def get(self, run_ref: str) -> RunRecord:
        """Look up one run by id, unique id prefix, or ``last``.

        ``last`` (and ``last~N`` for the N-th most recent) address runs
        positionally; otherwise ``run_ref`` must match exactly one
        registered run id or be a unique prefix of one.
        """
        records = self.load()
        if not records:
            raise SerializationError(
                f"run registry {self.path!r} is empty"
            )
        if run_ref == "last" or run_ref.startswith("last~"):
            back = 0
            if run_ref.startswith("last~"):
                try:
                    back = int(run_ref[len("last~"):])
                except ValueError:
                    raise SerializationError(
                        f"bad run reference {run_ref!r}"
                    ) from None
            if back >= len(records):
                raise SerializationError(
                    f"{run_ref!r} reaches past the {len(records)} "
                    "registered runs"
                )
            return records[-1 - back]
        exact = [r for r in records if r.run_id == run_ref]
        if len(exact) == 1:
            return exact[0]
        matches = [r for r in records if r.run_id.startswith(run_ref)]
        unique_ids = {r.run_id for r in matches}
        if len(unique_ids) == 1 and matches:
            return matches[-1]  # latest entry of that run id
        if not matches:
            raise SerializationError(
                f"no registered run matches {run_ref!r}"
            )
        raise SerializationError(
            f"run reference {run_ref!r} is ambiguous: "
            f"{sorted(unique_ids)}"
        )


# ----------------------------------------------------------------------
# Comparison / regression gating
# ----------------------------------------------------------------------
@dataclass
class RunDiff:
    """Phase-by-phase comparison of two registered runs."""

    baseline: RunRecord
    candidate: RunRecord
    #: phase -> (baseline seconds, candidate seconds, delta percent).
    phase_deltas: Dict[str, Tuple[float, float, float]] = field(
        default_factory=dict
    )
    #: (baseline, candidate, delta percent) throughput in trials/s.
    throughput_delta: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    wall_delta: Tuple[float, float, float] = (0.0, 0.0, 0.0)

    @property
    def comparable(self) -> bool:
        """Same config fingerprint — timings mean the same workload."""
        return (
            bool(self.baseline.fingerprint)
            and self.baseline.fingerprint == self.candidate.fingerprint
        )

    @property
    def digests_match(self) -> Optional[bool]:
        """Records bit-identity across the two runs (None if unrecorded)."""
        if not self.baseline.records_digest or not self.candidate.records_digest:
            return None
        return self.baseline.records_digest == self.candidate.records_digest

    def regressions(self, gate_pct: float) -> List[str]:
        """Human-readable regression descriptions beyond ``gate_pct``.

        A phase regresses when the candidate is more than ``gate_pct``
        percent *slower* than a baseline of at least
        :data:`MIN_GATE_SECONDS`; throughput regresses when it drops by
        more than ``gate_pct`` percent. Empty list = gate passes.
        """
        problems: List[str] = []
        for phase, (base, cand, pct) in sorted(self.phase_deltas.items()):
            if base >= MIN_GATE_SECONDS and pct > gate_pct:
                problems.append(
                    f"phase {phase}: {base:.3f}s -> {cand:.3f}s "
                    f"(+{pct:.1f}% > gate {gate_pct:g}%)"
                )
        base_t, cand_t, pct_t = self.throughput_delta
        if base_t > 0 and pct_t < -gate_pct:
            problems.append(
                f"throughput: {base_t:.2f} -> {cand_t:.2f} trials/s "
                f"({pct_t:.1f}% < gate -{gate_pct:g}%)"
            )
        if self.digests_match is False:
            problems.append(
                "records digest mismatch: "
                f"{self.baseline.records_digest[:12]} != "
                f"{self.candidate.records_digest[:12]} "
                "(same fingerprint must produce identical records)"
                if self.comparable
                else "records digest differs (configs differ too)"
            )
        return problems


def _pct(base: float, cand: float) -> float:
    if base <= 0:
        return 0.0
    return (cand - base) / base * 100.0


def diff_runs(baseline: RunRecord, candidate: RunRecord) -> RunDiff:
    """Compare ``candidate`` against ``baseline`` phase by phase."""
    deltas: Dict[str, Tuple[float, float, float]] = {}
    phases = set(baseline.phase_seconds) | set(candidate.phase_seconds)
    for phase in phases:
        base = baseline.phase_seconds.get(phase, 0.0)
        cand = candidate.phase_seconds.get(phase, 0.0)
        deltas[phase] = (base, cand, _pct(base, cand))
    return RunDiff(
        baseline=baseline,
        candidate=candidate,
        phase_deltas=deltas,
        throughput_delta=(
            baseline.throughput,
            candidate.throughput,
            _pct(baseline.throughput, candidate.throughput),
        ),
        wall_delta=(
            baseline.wall_seconds,
            candidate.wall_seconds,
            _pct(baseline.wall_seconds, candidate.wall_seconds),
        ),
    )


# ----------------------------------------------------------------------
# Rendering (the `repro runs` views)
# ----------------------------------------------------------------------
def _fmt_age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s ago"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m ago"
    if seconds < 172800:
        return f"{seconds / 3600:.1f}h ago"
    return f"{seconds / 86400:.1f}d ago"


def render_run_list(records: List[RunRecord], now: Optional[float] = None) -> str:
    """The ``repro runs list`` table (newest first)."""
    if not records:
        return "no registered runs"
    now = time.time() if now is None else now
    lines = [
        f"{'RUN':<22} {'EXPERIMENT':<12} {'BACKEND':<11} "
        f"{'TRIALS':>7} {'WALL':>8} {'TRIALS/S':>9} {'FAULTS':>7}  WHEN"
    ]
    for r in reversed(records):
        faults = r.failures + r.quarantined
        sup = sum(r.supervision.values())
        fault_cell = str(faults) if not sup else f"{faults}+{sup:g}s"
        lines.append(
            f"{r.run_id:<22} {r.experiment:<12} "
            f"{(r.backend or '?'):<11} {r.n_trials:>7} "
            f"{r.wall_seconds:>7.2f}s {r.throughput:>9.2f} "
            f"{fault_cell:>7}  {_fmt_age(max(0.0, now - r.started))}"
        )
    return "\n".join(lines)


def render_run_show(r: RunRecord) -> str:
    """The ``repro runs show`` detail view."""
    lines = [
        f"run {r.run_id} ({r.experiment})",
        f"  fingerprint      {r.fingerprint or '(unrecorded)'}",
        f"  backend          {r.backend or '?'} "
        f"(jobs={r.jobs}, shards={r.shards})",
        f"  wall-clock       {r.wall_seconds:.3f}s",
        f"  trials           {r.n_trials} "
        f"({r.replayed_trials} replayed, {r.streamed_trials} streamed)",
        f"  records          {r.n_records}",
        f"  throughput       {r.throughput:.2f} trials/s",
        f"  faults           failures={r.failures} retries={r.retries} "
        f"quarantined={r.quarantined}",
    ]
    if r.phase_seconds:
        lines.append("  phases:")
        for phase, seconds in sorted(r.phase_seconds.items()):
            lines.append(f"    {phase:<12} {seconds:>9.3f}s")
    if any(r.supervision.values()):
        lines.append("  supervision:")
        for name, value in sorted(r.supervision.items()):
            if value:
                lines.append(f"    {name:<24} {value:>6g}")
    if r.records_digest:
        lines.append(f"  records digest   {r.records_digest}")
    if r.trace_path:
        lines.append(f"  trace            {r.trace_path}")
    return "\n".join(lines)


def render_run_diff(diff: RunDiff, gate_pct: float) -> str:
    """The ``repro runs diff`` report (regressions flagged with ``!``)."""
    a, b = diff.baseline, diff.candidate
    lines = [
        f"diff {a.run_id} (baseline) -> {b.run_id} (candidate)",
        f"  experiment       {a.experiment} -> {b.experiment}",
        f"  fingerprint      "
        + ("identical" if diff.comparable else "DIFFERENT — timings "
           "compare different workloads"),
    ]
    base_w, cand_w, pct_w = diff.wall_delta
    lines.append(
        f"  wall-clock       {base_w:.3f}s -> {cand_w:.3f}s "
        f"({pct_w:+.1f}%)"
    )
    base_t, cand_t, pct_t = diff.throughput_delta
    lines.append(
        f"  throughput       {base_t:.2f} -> {cand_t:.2f} trials/s "
        f"({pct_t:+.1f}%)"
    )
    if diff.phase_deltas:
        lines.append("  phases:")
        for phase, (base, cand, pct) in sorted(diff.phase_deltas.items()):
            flag = (
                " !" if base >= MIN_GATE_SECONDS and pct > gate_pct else ""
            )
            lines.append(
                f"    {phase:<12} {base:>9.3f}s -> {cand:>9.3f}s "
                f"({pct:+7.1f}%){flag}"
            )
    if diff.digests_match is True:
        lines.append("  records digest   identical")
    elif diff.digests_match is False:
        lines.append("  records digest   MISMATCH")
    regressions = diff.regressions(gate_pct)
    if regressions:
        lines.append(f"  REGRESSIONS (gate {gate_pct:g}%):")
        for problem in regressions:
            lines.append(f"    {problem}")
    else:
        lines.append(f"  gate             pass (≤ {gate_pct:g}%)")
    return "\n".join(lines)
