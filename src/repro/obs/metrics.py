"""Metrics registry: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` holds every metric of one process's view of a
run. Registries are plain picklable data with a :meth:`merge` that is
associative and commutative, so worker processes measure locally, ship
their registry back with the chunk result, and the parent folds them
all into one run-level registry:

* **counters** sum (trials completed, cache hits, retries);
* **gauges** keep the maximum (peak RSS, deepest search) — merging
  process-local "latest value" gauges any other way would depend on
  arrival order, which the engine deliberately randomizes;
* **histograms** add bucket counts pointwise (they must share bucket
  boundaries, which named constructors guarantee).

Histogram buckets are fixed at observation time (Prometheus-style upper
bounds plus an implicit +Inf overflow bucket); :data:`LATENCY_BUCKETS`
covers the microseconds-to-minutes range the pipeline's phases span.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError

#: Default bucket upper bounds (seconds) for phase/latency histograms.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Default bucket upper bounds for count-valued histograms (nodes
#: expanded, slices per distribution, ...).
COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1_000, 2_000, 5_000, 10_000, 50_000, 100_000, 500_000,
)


@dataclass
class Histogram:
    """Fixed-bucket histogram with sum/count/min/max (picklable).

    ``buckets`` are sorted upper bounds; ``counts`` has one extra slot
    for the +Inf overflow bucket. ``counts[i]`` is the number of
    observations ``v <= buckets[i]`` that fell past ``buckets[i-1]``
    (bucketed, not cumulative).
    """

    buckets: Tuple[float, ...]
    counts: List[int] = field(default_factory=list)
    total: float = 0.0
    n: int = 0
    min: float = float("inf")
    max: float = float("-inf")

    def __post_init__(self) -> None:
        if not self.buckets:
            raise ExperimentError("histogram needs at least one bucket")
        if list(self.buckets) != sorted(self.buckets):
            raise ExperimentError(
                f"histogram buckets must be sorted, got {self.buckets}"
            )
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)
        elif len(self.counts) != len(self.buckets) + 1:
            raise ExperimentError(
                f"histogram needs {len(self.buckets) + 1} count slots "
                f"(one per bucket + overflow), got {len(self.counts)}"
            )

    def observe(self, value: float) -> None:
        """Record one observation.

        Non-finite values are **rejected** with an
        :class:`~repro.errors.ExperimentError`: NaN would silently land
        in the first bucket (``bisect`` treats every comparison against
        NaN as false) and poison ``sum``/``min``/``max``, and ±Inf has
        no meaningful bucket or mean. Negative values are *allowed* and
        land in the lowest bucket — durations are never negative, but
        count-valued histograms may legitimately observe signed deltas.
        """
        if value != value or value in (float("inf"), float("-inf")):
            raise ExperimentError(
                f"histogram observation must be finite, got {value!r}"
            )
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.n += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ExperimentError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.n += other.n
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.n,
            "min": self.min if self.n else None,
            "max": self.max if self.n else None,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        try:
            hist = cls(
                buckets=tuple(float(b) for b in data["buckets"]),
                counts=[int(c) for c in data["counts"]],
                total=float(data["sum"]),
                n=int(data["count"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(f"malformed histogram: {exc}") from exc
        hist.min = (
            float(data["min"]) if data.get("min") is not None
            else float("inf")
        )
        hist.max = (
            float(data["max"]) if data.get("max") is not None
            else float("-inf")
        )
        return hist


@dataclass
class MetricsRegistry:
    """All counters, gauges, and histograms of one run (picklable)."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Record gauge ``name``; merges keep the maximum."""
        self.gauges[name] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        """Add one observation to histogram ``name``.

        ``buckets`` fixes the boundaries on first use (default
        :data:`LATENCY_BUCKETS`); later calls must agree or omit them.
        Non-finite values (NaN, ±Inf) are rejected with an
        :class:`~repro.errors.ExperimentError` — see
        :meth:`Histogram.observe`.
        """
        hist = self.histograms.get(name)
        if hist is None:
            bounds = tuple(buckets) if buckets is not None else LATENCY_BUCKETS
            hist = Histogram(buckets=bounds)
            hist.observe(value)  # reject before registering the name
            self.histograms[name] = hist
            return
        if buckets is not None and tuple(buckets) != hist.buckets:
            raise ExperimentError(
                f"histogram {name!r} already has buckets {hist.buckets}; "
                f"cannot re-bucket to {tuple(buckets)}"
            )
        hist.observe(value)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry (e.g. one worker chunk's) into this one."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            mine = self.gauges.get(name)
            self.gauges[name] = value if mine is None else max(mine, value)
        for name, hist in other.histograms.items():
            mine_h = self.histograms.get(name)
            if mine_h is None:
                self.histograms[name] = Histogram(
                    buckets=hist.buckets,
                    counts=list(hist.counts),
                    total=hist.total,
                    n=hist.n,
                )
                self.histograms[name].min = hist.min
                self.histograms[name].max = hist.max
            else:
                mine_h.merge(hist)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: hist.as_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        try:
            return cls(
                counters={
                    str(k): float(v)
                    for k, v in data.get("counters", {}).items()
                },
                gauges={
                    str(k): float(v)
                    for k, v in data.get("gauges", {}).items()
                },
                histograms={
                    str(k): Histogram.from_dict(v)
                    for k, v in data.get("histograms", {}).items()
                },
            )
        except (AttributeError, TypeError, ValueError) as exc:
            raise ExperimentError(
                f"malformed metrics registry: {exc}"
            ) from exc

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)
