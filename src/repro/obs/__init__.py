"""``repro.obs`` — zero-dependency telemetry for the experiment engine.

Structured span tracing, a metrics registry, per-worker resource
sampling, and trace export, threaded through the whole pipeline:

* :mod:`repro.obs.spans` — nested, picklable :class:`Span` trees
  recorded by a :class:`SpanRecorder`; workers record locally and the
  parent adopts their roots, producing one merged timeline per run.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges (max-merged), and fixed-bucket histograms; registries from
  worker chunks fold into the run's registry.
* :mod:`repro.obs.runtime` — the active :class:`Telemetry` session and
  the cheap ambient hooks (:func:`count`, :func:`observe`,
  :func:`span`, ...) instrumented components call unconditionally; all
  are no-ops when tracing is off.
* :mod:`repro.obs.resources` — RSS/CPU sampling via ``resource``/``os``.
* :mod:`repro.obs.export` — the append-only JSONL event log, schema
  validation, and Chrome-trace/Perfetto conversion.
* :mod:`repro.obs.report` — human-readable run reports.
* :mod:`repro.obs.live` — the *streaming* side: a ``status.jsonl``
  stream that grows during the run (:class:`StatusStream`), the
  :class:`StatusSampler` thread snapshotting progress/liveness, and
  the ambient :func:`publish`/:func:`probe` hooks (no-ops when off).
* :mod:`repro.obs.promexport` — OpenMetrics textfile export
  (``--metrics-out``), rewritten atomically for external scrapers.
* :mod:`repro.obs.registry` — the append-only run registry behind
  ``repro runs list/show/diff`` and its regression gate.
* :mod:`repro.obs.board` — the ``repro top`` status-board renderer.

Enable tracing from the CLI with ``repro run --trace DIR``, then
inspect with ``repro report`` / ``repro trace``; from code, pass a
:class:`Telemetry` to :class:`~repro.feast.instrumentation.Instrumentation`
and hand it to :func:`~repro.feast.runner.run_experiment`.
"""

from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.resources import ResourceSample, sample_resources
from repro.obs.runtime import (
    Telemetry,
    activate,
    active,
    annotate,
    count,
    gauge,
    observe,
    span,
    toplevel_span,
)
from repro.obs.spans import Span, SpanRecorder
from repro.obs.export import (
    EventLog,
    TRACE_FORMAT,
    TRACE_VERSION,
    chrome_trace,
    events_from_telemetry,
    read_events,
    validate_events,
    write_chrome_trace,
    write_events,
)
from repro.obs.report import render_run_report
from repro.obs.live import (
    STATUS_FORMAT,
    STATUS_VERSION,
    StatusSampler,
    StatusStream,
    activate_status,
    active_status,
    probe,
    publish,
    read_status,
)
from repro.obs.promexport import openmetrics_text, write_openmetrics
from repro.obs.registry import (
    DEFAULT_REGISTRY_DIR,
    RunRecord,
    RunRegistry,
    diff_runs,
    records_digest,
)
from repro.obs.board import render_board

__all__ = [
    "Span",
    "SpanRecorder",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "COUNT_BUCKETS",
    "ResourceSample",
    "sample_resources",
    "Telemetry",
    "activate",
    "active",
    "annotate",
    "count",
    "gauge",
    "observe",
    "span",
    "toplevel_span",
    "EventLog",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "events_from_telemetry",
    "write_events",
    "read_events",
    "validate_events",
    "chrome_trace",
    "write_chrome_trace",
    "render_run_report",
    "STATUS_FORMAT",
    "STATUS_VERSION",
    "StatusStream",
    "StatusSampler",
    "activate_status",
    "active_status",
    "publish",
    "probe",
    "read_status",
    "openmetrics_text",
    "write_openmetrics",
    "DEFAULT_REGISTRY_DIR",
    "RunRecord",
    "RunRegistry",
    "diff_runs",
    "records_digest",
    "render_board",
]
