"""The active telemetry session and the hot-path hooks that feed it.

A :class:`Telemetry` bundles one run's span recorder, metrics registry,
and resource samples. Exactly one session can be *active* per thread
(worker processes activate their own around each chunk); library code
deep in the pipeline — the branch-and-bound scheduler, the expanded-graph
cache, the slicer — reports through the module-level hooks
:func:`count` / :func:`gauge` / :func:`observe` / :func:`span` /
:func:`annotate`, which are **cheap no-ops when no session is active**:
a thread-local attribute read and an ``is None`` test. That is the whole
overhead contract: benchmarks and untraced runs pay one branch per hook
site, never allocation or I/O.

Mirrors the design of :mod:`repro.budget` (thread-local ambient state,
poll-unconditionally), so instrumented components need no telemetry
arguments threaded through their signatures.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.resources import ResourceSample
from repro.obs.spans import Span, SpanRecorder

_state = threading.local()


@dataclass
class Telemetry:
    """One run's telemetry: spans + metrics + resource samples."""

    spans: SpanRecorder = field(default_factory=SpanRecorder)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    resources: List[ResourceSample] = field(default_factory=list)

    def adopt_chunk(
        self,
        spans: Optional[List[Span]] = None,
        metrics: Optional[MetricsRegistry] = None,
        resources: Optional[List[ResourceSample]] = None,
    ) -> None:
        """Fold one worker chunk's shipped telemetry into this session."""
        if spans:
            self.spans.adopt(spans)
        if metrics is not None:
            self.metrics.merge(metrics)
        if resources:
            self.resources.extend(resources)


def active() -> Optional[Telemetry]:
    """The thread's active telemetry session, if any."""
    return getattr(_state, "session", None)


@contextmanager
def activate(session: Optional[Telemetry]) -> Iterator[None]:
    """Run a block with ``session`` active (``None`` = leave untouched).

    Re-activating the already-active session is a no-op, so an engine
    entry point can activate unconditionally even when its caller
    already did.
    """
    previous = active()
    if session is None or session is previous:
        yield
        return
    _state.session = session
    try:
        yield
    finally:
        _state.session = previous


# ----------------------------------------------------------------------
# Hot-path hooks (no-ops when inactive)
# ----------------------------------------------------------------------
def count(name: str, n: float = 1) -> None:
    """Add ``n`` to counter ``name`` on the active session, if any."""
    session = getattr(_state, "session", None)
    if session is not None:
        session.metrics.count(name, n)


def gauge(name: str, value: float) -> None:
    """Record gauge ``name`` on the active session, if any."""
    session = getattr(_state, "session", None)
    if session is not None:
        session.metrics.gauge(name, value)


def observe(
    name: str, value: float, buckets: Optional[Sequence[float]] = None
) -> None:
    """Histogram observation on the active session, if any."""
    session = getattr(_state, "session", None)
    if session is not None:
        session.metrics.observe(name, value, buckets=buckets)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the innermost open span, if any."""
    session = getattr(_state, "session", None)
    if session is not None:
        session.spans.annotate(**attrs)


class _NullSpan:
    """Reusable no-op context manager for the inactive case."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any):
    """Time a block as a span on the active session (no-op when none).

    Returns the recorder's own context manager directly (not a wrapping
    generator): ``span`` sits on the per-trial hot path, and every layer
    of ``@contextmanager`` indirection is measurable at that frequency.
    """
    session = getattr(_state, "session", None)
    if session is None:
        return _NULL_SPAN
    return session.spans.span(name, **attrs)


def toplevel_span(name: str, **attrs: Any):
    """Like :func:`span`, but only when no span is open yet.

    Engine entry points use this for the root ``run`` span so that
    delegation (``run_experiment`` → ``run_parallel_experiment``) does
    not nest a second root.
    """
    session = getattr(_state, "session", None)
    if session is None or session.spans.depth > 0:
        return _NULL_SPAN
    return session.spans.span(name, **attrs)
