"""OpenMetrics textfile export of a run's live metrics.

``repro run … --metrics-out FILE`` keeps ``FILE`` updated with a
scrape-able snapshot of the run in the OpenMetrics / Prometheus text
exposition format: the node-exporter *textfile collector* (and most
other agents) can pick it up with zero integration work, which is how
the future HTTP service and external dashboards get metrics for free.

Each rewrite goes through :func:`~repro.obs.export.atomic_write_text`,
so a scraper racing the sampler always reads either the previous or the
complete new snapshot — never a torn file.

Mapping:

* repro **counters** become OpenMetrics counters (``repro_…_total``);
* repro **gauges** and the sampler's snapshot fields (trials done/total,
  throughput, RSS) become gauges;
* repro **histograms** become classic Prometheus histograms —
  *cumulative* ``_bucket{le="…"}`` series ending in ``le="+Inf"``, plus
  ``_sum`` and ``_count`` (repro stores per-bucket counts, so the
  exporter does the running sum).

Metric names are sanitized into the ``repro_`` namespace (dots and any
other non-``[a-zA-Z0-9_]`` become underscores); every sample carries
``experiment``/``run_id`` labels when known. The file terminates with
``# EOF`` as OpenMetrics requires.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.export import atomic_write_text
from repro.obs.metrics import MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_PREFIX = "repro_"


def metric_name(name: str) -> str:
    """Sanitize a repro metric name into the OpenMetrics namespace."""
    cleaned = _NAME_RE.sub("_", name).strip("_")
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = "m_" + cleaned
    return _PREFIX + cleaned


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(pairs: Dict[str, Any], extra: str = "") -> str:
    parts = [
        f'{key}="{_escape_label(value)}"'
        for key, value in pairs.items()
        if value is not None
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value))


def openmetrics_text(
    registry: Optional[MetricsRegistry] = None,
    snapshot: Optional[Dict[str, Any]] = None,
    experiment: Optional[str] = None,
    run_id: Optional[str] = None,
) -> str:
    """Render one metrics snapshot as OpenMetrics exposition text.

    ``registry`` supplies the run's counters/gauges/histograms;
    ``snapshot`` (a :meth:`~repro.obs.live.StatusSampler.snapshot`
    dict) supplies the live progress gauges. Both are optional — an
    empty call still renders a valid (empty) exposition.
    """
    base = {"experiment": experiment, "run_id": run_id}
    lines: List[str] = []

    def sample(name: str, kind: str, values: List[Tuple[str, float]],
               help_text: Optional[str] = None) -> None:
        lines.append(f"# TYPE {name} {kind}")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        for suffix_and_labels, value in values:
            lines.append(f"{name}{suffix_and_labels} {_fmt(value)}")

    if snapshot is not None:
        trials = snapshot.get("trials", {})
        sample(
            _PREFIX + "trials_total", "gauge",
            [(_labels(base), float(trials.get("total", 0)))],
            "Planned trials of the run.",
        )
        sample(
            _PREFIX + "trials_done", "gauge",
            [(_labels(base), float(trials.get("done", 0)))],
            "Trials completed so far (including replays).",
        )
        sample(
            _PREFIX + "trials_replayed", "gauge",
            [(_labels(base), float(trials.get("replayed", 0)))],
            "Trials satisfied from a checkpoint journal.",
        )
        throughput = snapshot.get("throughput", {})
        sample(
            _PREFIX + "throughput_trials_per_second", "gauge",
            [
                (_labels(base, 'window="overall"'),
                 float(throughput.get("overall", 0.0))),
                (_labels(base, 'window="recent"'),
                 float(throughput.get("recent", 0.0))),
            ],
            "Trial completion rate.",
        )
        eta = snapshot.get("eta_seconds")
        if eta is not None:
            sample(
                _PREFIX + "eta_seconds", "gauge",
                [(_labels(base), float(eta))],
                "Estimated seconds to completion.",
            )
        sample(
            _PREFIX + "wall_elapsed_seconds", "gauge",
            [(_labels(base), float(snapshot.get("wall_elapsed", 0.0)))],
            "Wall-clock seconds since the run started.",
        )
        phase_samples = [
            (_labels(base, f'phase="{phase}"'), float(seconds))
            for phase, seconds in sorted(
                (snapshot.get("phases") or {}).items()
            )
        ]
        if phase_samples:
            sample(
                _PREFIX + "phase_seconds", "gauge", phase_samples,
                "Summed CPU-side seconds per trial phase.",
            )
        faults = snapshot.get("faults", {})
        fault_samples = [
            (_labels(base, f'fault="{name}"'), float(value))
            for name, value in sorted(faults.items())
        ]
        if fault_samples:
            sample(
                _PREFIX + "faults", "gauge", fault_samples,
                "Fault-tolerance event counts so far.",
            )
        parent = snapshot.get("parent", {})
        if parent:
            sample(
                _PREFIX + "parent_rss_max_kb", "gauge",
                [(_labels(base), float(parent.get("rss_max_kb", 0)))],
                "Parent process peak RSS in kB.",
            )

    if registry is not None:
        for name, value in sorted(registry.counters.items()):
            om = metric_name(name)
            sample(om, "counter", [(f"_total{_labels(base)}", float(value))])
        for name, value in sorted(registry.gauges.items()):
            om = metric_name(name)
            sample(om, "gauge", [(_labels(base), float(value))])
        for name, hist in sorted(registry.histograms.items()):
            om = metric_name(name)
            values: List[Tuple[str, float]] = []
            running = 0
            for bound, count in zip(hist.buckets, hist.counts):
                running += count
                le = 'le="' + _fmt(bound) + '"'
                values.append((f"_bucket{_labels(base, le)}", float(running)))
            inf_le = 'le="+Inf"'
            values.append((
                f"_bucket{_labels(base, inf_le)}",
                float(hist.n),
            ))
            values.append((f"_sum{_labels(base)}", hist.total))
            values.append((f"_count{_labels(base)}", float(hist.n)))
            sample(om, "histogram", values)

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    path: str,
    telemetry=None,
    snapshot: Optional[Dict[str, Any]] = None,
    experiment: Optional[str] = None,
    run_id: Optional[str] = None,
) -> None:
    """Atomically (re)write ``path`` with the current exposition text.

    A scraper reading ``path`` concurrently sees either the previous
    snapshot or the complete new one, never a partial file.
    """
    registry = telemetry.metrics if telemetry is not None else None
    atomic_write_text(
        path,
        openmetrics_text(
            registry=registry,
            snapshot=snapshot,
            experiment=experiment,
            run_id=run_id,
        ),
    )
