"""repro.serve: deadline assignment as a long-running HTTP service.

The batch engine answers "run this sweep and give me the records"; this
package answers the same question over a socket, for many callers at
once, with durability across server restarts. It is deliberately
stdlib-only (``asyncio`` + ``sqlite3`` + ``json``): the service is part
of the reproduction, so it must run anywhere the paper code runs.

Layering (request flow, top to bottom):

* :mod:`repro.serve.http` — minimal HTTP/1.1 framing: bounded reads,
  structured JSON errors, one connection per request.
* :mod:`repro.serve.app` — routing, auth/rate-limit edges, and the
  service object that owns everything below.
* :mod:`repro.serve.validation` — eager edge validation of job
  documents: every rejection is a 400 with field paths, never a 500.
* :mod:`repro.serve.jobs` — the job document schema, the
  queued → running → done/failed/cancelled state machine, and the
  compiler from documents to :class:`~repro.feast.config.ExperimentConfig`
  (which is what makes service results byte-identical to a direct
  :func:`~repro.feast.runner.run_experiment` call).
* :mod:`repro.serve.store` — SQLite job store (WAL, fsync'd), the
  control-plane sibling of the checkpoint journal data plane.
* :mod:`repro.serve.queue` — bounded queue + worker pool over the
  ExecutionBackend layer, with cooperative cancel and graceful drain.
"""

from repro.serve.app import ReproService, ServiceConfig, ServiceHandle, run_service
from repro.serve.jobs import (
    JOB_FORMAT,
    JOB_VERSION,
    JobCancelled,
    JobState,
    compile_job,
)
from repro.serve.validation import DocumentError, parse_json_strict, validate_job

__all__ = [
    "JOB_FORMAT",
    "JOB_VERSION",
    "DocumentError",
    "JobCancelled",
    "JobState",
    "ReproService",
    "ServiceConfig",
    "ServiceHandle",
    "compile_job",
    "parse_json_strict",
    "run_service",
    "validate_job",
]
