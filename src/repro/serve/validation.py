"""Eager edge validation of job documents: 400s with field paths.

The service's error contract is strict — hostile or malformed input
yields a structured 4xx naming the offending field, *never* a 500 and
never a hang. That means validation has to happen at the edge, before a
document is accepted into the durable queue, and it has to be exhaustive
enough that :func:`~repro.serve.jobs.compile_job` on a validated
document cannot fail for a reason the client caused.

Two layers:

* :func:`parse_json_strict` — bytes → JSON with the hostile inputs the
  stdlib parser accepts by default rejected: ``NaN``/``Infinity``
  tokens (which would poison lateness arithmetic downstream) and
  duplicate object keys (which silently drop data).
* :func:`validate_job` — shape checks with precise paths
  (``graphs[2].subtasks[0].wcet``), then the domain's own validators
  (graph decode + :meth:`~repro.graph.taskgraph.TaskGraph.validate`,
  :class:`~repro.feast.config.MethodSpec`,
  :class:`~repro.graph.generator.RandomGraphConfig`) so semantic rules
  like acyclicity and anchor coverage are enforced by the same code the
  batch engine trusts, not a parallel re-implementation.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.feast.config import MethodSpec, SPEED_PROFILES
from repro.graph.generator import SCENARIOS, RandomGraphConfig
from repro.graph.serialization import graph_from_dict
from repro.machine.topology import TOPOLOGIES
from repro.sched.policies import POLICIES
from repro.serve import jobs

#: Keys accepted at each level; anything else is a 400 naming the key.
TOP_LEVEL_KEYS = {"format", "version", "name", "graphs", "workload", "platform", "methods"}
WORKLOAD_KEYS = {"scenarios", "n_graphs", "seed", "graph_config"}
PLATFORM_KEYS = {
    "system_sizes", "topology", "policy", "speed_profile", "respect_release_times",
}
METHOD_KEYS = {
    "label", "metric", "comm", "surplus", "threshold_factor",
    "cost_per_item", "baseline", "capacity_aware", "clamp_to_anchors",
}
GRAPH_CONFIG_KEYS = {
    "n_subtasks_range", "mean_execution_time", "execution_time_deviation",
    "depth_range", "degree_range", "overall_laxity_ratio", "olr_basis",
    "communication_to_computation_ratio", "message_size_deviation",
    "long_edge_probability", "integer_times",
}
_RANGE_KEYS = {"n_subtasks_range", "depth_range", "degree_range"}


class DocumentError(ReproError):
    """A rejected document: a list of ``(path, message)`` field errors."""

    def __init__(self, fields: List[Tuple[str, str]], title: str = "invalid job document") -> None:
        self.title = title
        self.fields = list(fields)
        first = "; ".join(f"{p or '$'}: {m}" for p, m in self.fields[:3])
        super().__init__(f"{title}: {first}")

    @classmethod
    def single(cls, path: str, message: str, title: str = "invalid job document") -> "DocumentError":
        return cls([(path, message)], title=title)

    def body(self) -> Dict[str, Any]:
        return {
            "title": self.title,
            "fields": [{"path": p, "message": m} for p, m in self.fields],
        }


def _reject_constant(token: str) -> Any:
    raise DocumentError.single(
        "", f"non-finite JSON token {token!r} is not accepted", title="invalid JSON"
    )


def _reject_duplicate_keys(pairs: List[Tuple[str, Any]]) -> Dict[str, Any]:
    obj: Dict[str, Any] = {}
    for key, value in pairs:
        if key in obj:
            raise DocumentError.single(
                "", f"duplicate object key {key!r}", title="invalid JSON"
            )
        obj[key] = value
    return obj


def parse_json_strict(raw: bytes) -> Any:
    """Decode a request body to JSON, rejecting what stdlib tolerates."""
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise DocumentError.single("", f"body is not valid UTF-8: {exc}", title="invalid JSON")
    try:
        return json.loads(
            text,
            parse_constant=_reject_constant,
            object_pairs_hook=_reject_duplicate_keys,
        )
    except DocumentError:
        raise
    except json.JSONDecodeError as exc:
        raise DocumentError.single("", f"invalid JSON: {exc}", title="invalid JSON")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


class _Collector:
    """Accumulates field errors so one response names every problem."""

    def __init__(self) -> None:
        self.fields: List[Tuple[str, str]] = []

    def add(self, path: str, message: str) -> None:
        self.fields.append((path, message))

    def raise_if_any(self) -> None:
        if self.fields:
            raise DocumentError(self.fields)


def _check_envelope(data: Any, errs: _Collector) -> None:
    if data.get("format") != jobs.JOB_FORMAT:
        errs.add("format", f"expected {jobs.JOB_FORMAT!r}, got {data.get('format')!r}")
    if data.get("version") != jobs.JOB_VERSION:
        errs.add("version", f"expected {jobs.JOB_VERSION}, got {data.get('version')!r}")
    for key in sorted(set(data) - TOP_LEVEL_KEYS):
        errs.add(key, "unknown field")
    name = data.get("name")
    if name is not None:
        if not isinstance(name, str) or not name.strip():
            errs.add("name", "must be a non-empty string")
        elif len(name) > 120:
            errs.add("name", f"too long ({len(name)} > 120 characters)")


def _check_graphs(graphs: Any, errs: _Collector) -> None:
    if not isinstance(graphs, list) or not graphs:
        errs.add("graphs", "must be a non-empty list of repro-taskgraph documents")
        return
    if len(graphs) > jobs.MAX_GRAPHS:
        errs.add("graphs", f"too many graphs ({len(graphs)} > {jobs.MAX_GRAPHS})")
        return
    for i, doc in enumerate(graphs):
        path = f"graphs[{i}]"
        if not isinstance(doc, dict):
            errs.add(path, "must be a repro-taskgraph object")
            continue
        for j, sub in enumerate(doc.get("subtasks") or []):
            if isinstance(sub, dict):
                wcet = sub.get("wcet")
                if wcet is not None and not _is_number(wcet):
                    errs.add(f"{path}.subtasks[{j}].wcet", "must be a number")
        try:
            graph = graph_from_dict(doc)
            graph.validate()
        except ReproError as exc:
            errs.add(path, str(exc))


def _check_workload(workload: Any, errs: _Collector) -> None:
    if not isinstance(workload, dict):
        errs.add("workload", "must be an object")
        return
    for key in sorted(set(workload) - WORKLOAD_KEYS):
        errs.add(f"workload.{key}", "unknown field")
    n_graphs = workload.get("n_graphs")
    if n_graphs is not None:
        if not _is_int(n_graphs) or n_graphs < 1:
            errs.add("workload.n_graphs", "must be an integer >= 1")
        elif n_graphs > jobs.MAX_N_GRAPHS:
            errs.add("workload.n_graphs", f"too large ({n_graphs} > {jobs.MAX_N_GRAPHS})")
    seed = workload.get("seed")
    if seed is not None and not _is_int(seed):
        errs.add("workload.seed", "must be an integer")
    scenarios = workload.get("scenarios")
    if scenarios is not None:
        if not isinstance(scenarios, list) or not scenarios:
            errs.add("workload.scenarios", "must be a non-empty list")
        else:
            for i, scenario in enumerate(scenarios):
                if scenario not in SCENARIOS:
                    errs.add(
                        f"workload.scenarios[{i}]",
                        f"unknown scenario {scenario!r}; expected one of {sorted(SCENARIOS)}",
                    )
            if len(set(scenarios)) != len(scenarios):
                errs.add("workload.scenarios", "duplicate scenarios")
    graph_config = workload.get("graph_config")
    if graph_config is not None:
        _check_graph_config(graph_config, errs)


def _check_graph_config(graph_config: Any, errs: _Collector) -> None:
    if not isinstance(graph_config, dict):
        errs.add("workload.graph_config", "must be an object")
        return
    for key in sorted(set(graph_config) - GRAPH_CONFIG_KEYS):
        errs.add(f"workload.graph_config.{key}", "unknown field")
    normalized = {}
    for key, value in graph_config.items():
        if key not in GRAPH_CONFIG_KEYS:
            continue
        if key in _RANGE_KEYS:
            if (
                not isinstance(value, list) or len(value) != 2
                or not all(_is_int(v) for v in value)
            ):
                errs.add(f"workload.graph_config.{key}", "must be a [lo, hi] integer pair")
                continue
            normalized[key] = tuple(value)
        elif key == "olr_basis":
            if not isinstance(value, str):
                errs.add(f"workload.graph_config.{key}", "must be a string")
                continue
            normalized[key] = value
        elif key == "integer_times":
            if not isinstance(value, bool):
                errs.add(f"workload.graph_config.{key}", "must be a boolean")
                continue
            normalized[key] = value
        else:
            if not _is_number(value):
                errs.add(f"workload.graph_config.{key}", "must be a number")
                continue
            normalized[key] = value
    if errs.fields:
        return
    try:
        config = RandomGraphConfig(**normalized)
    except ReproError as exc:
        errs.add("workload.graph_config", str(exc))
        return
    # The generator draws n and depth independently and needs
    # n >= depth for every draw; a config where some (n, depth) pair
    # violates that *will* eventually fail a trial. The CLI tolerates
    # it (fail-fast at run time); the service rejects it at submit,
    # because by then the client has long since disconnected. Note the
    # effective values matter — a too-small n_subtasks_range against
    # the *default* depth_range is the common way to trip this.
    if config.n_subtasks_range[0] < config.depth_range[1]:
        errs.add(
            "workload.graph_config",
            "unsatisfiable generator ranges: a drawn depth (depth_range="
            f"{list(config.depth_range)}) can exceed a drawn subtask count "
            f"(n_subtasks_range={list(config.n_subtasks_range)}); generation "
            "requires n_subtasks >= depth for every draw",
        )


def _check_platform(platform: Any, errs: _Collector) -> None:
    if not isinstance(platform, dict):
        errs.add("platform", "must be an object")
        return
    for key in sorted(set(platform) - PLATFORM_KEYS):
        errs.add(f"platform.{key}", "unknown field")
    sizes = platform.get("system_sizes")
    if sizes is not None:
        if not isinstance(sizes, list) or not sizes:
            errs.add("platform.system_sizes", "must be a non-empty list of integers")
        elif len(sizes) > jobs.MAX_SYSTEM_SIZES:
            errs.add(
                "platform.system_sizes",
                f"too many sizes ({len(sizes)} > {jobs.MAX_SYSTEM_SIZES})",
            )
        else:
            for i, size in enumerate(sizes):
                if not _is_int(size) or size < 1:
                    errs.add(f"platform.system_sizes[{i}]", "must be an integer >= 1")
            if len(set(sizes)) != len(sizes):
                errs.add("platform.system_sizes", "duplicate sizes")
    topology = platform.get("topology")
    if topology is not None and topology not in TOPOLOGIES:
        errs.add(
            "platform.topology",
            f"unknown topology {topology!r}; expected one of {sorted(TOPOLOGIES)}",
        )
    policy = platform.get("policy")
    if policy is not None and (
        not isinstance(policy, str) or policy.upper() not in POLICIES
    ):
        errs.add(
            "platform.policy",
            f"unknown policy {policy!r}; expected one of {sorted(POLICIES)}",
        )
    profile = platform.get("speed_profile")
    if profile is not None and profile not in SPEED_PROFILES:
        errs.add(
            "platform.speed_profile",
            f"unknown speed profile {profile!r}; expected one of {sorted(SPEED_PROFILES)}",
        )
    flag = platform.get("respect_release_times")
    if flag is not None and not isinstance(flag, bool):
        errs.add("platform.respect_release_times", "must be a boolean")


def _check_methods(methods: Any, errs: _Collector) -> None:
    if not isinstance(methods, list) or not methods:
        errs.add("methods", "must be a non-empty list of method specs")
        return
    labels = []
    for i, spec in enumerate(methods):
        path = f"methods[{i}]"
        if not isinstance(spec, dict):
            errs.add(path, "must be an object")
            continue
        for key in sorted(set(spec) - METHOD_KEYS):
            errs.add(f"{path}.{key}", "unknown field")
        label = spec.get("label")
        if not isinstance(label, str) or not label.strip():
            errs.add(f"{path}.label", "must be a non-empty string")
            continue
        labels.append(label)
        typed_ok = True
        for key, kind in (
            ("metric", str), ("comm", str), ("baseline", str),
            ("capacity_aware", bool), ("clamp_to_anchors", bool),
        ):
            value = spec.get(key)
            if value is not None and not isinstance(value, kind):
                errs.add(f"{path}.{key}", f"must be a {kind.__name__}")
                typed_ok = False
        for key in ("surplus", "threshold_factor", "cost_per_item"):
            value = spec.get(key)
            if value is not None and not _is_number(value):
                errs.add(f"{path}.{key}", "must be a number")
                typed_ok = False
        if not typed_ok or set(spec) - METHOD_KEYS:
            continue
        try:
            MethodSpec(**spec)
        except ReproError as exc:
            errs.add(path, str(exc))
        except TypeError as exc:
            errs.add(path, f"malformed method spec: {exc}")
    if len(set(labels)) != len(labels):
        errs.add("methods", f"duplicate method labels: {labels}")


def validate_job(data: Any) -> Dict[str, Any]:
    """Validate a parsed job document; returns it unchanged on success.

    Raises :class:`DocumentError` carrying *every* field error found —
    clients fix a rejected document in one round trip, not one field at
    a time. After this returns, :func:`~repro.serve.jobs.compile_job`
    is guaranteed not to fail for client-attributable reasons (the HTTP
    layer still guards it as a belt-and-braces 400).
    """
    if not isinstance(data, dict):
        raise DocumentError.single(
            "", f"job document must be a JSON object, got {type(data).__name__}"
        )
    errs = _Collector()
    _check_envelope(data, errs)

    graphs = data.get("graphs")
    workload = data.get("workload")
    if graphs is None and workload is None:
        errs.add("", "exactly one of 'graphs' or 'workload' is required")
    elif graphs is not None and workload is not None:
        errs.add("", "'graphs' and 'workload' are mutually exclusive")
    elif graphs is not None:
        _check_graphs(graphs, errs)
    else:
        _check_workload(workload, errs)

    if "platform" in data and data["platform"] is not None:
        _check_platform(data["platform"], errs)
    _check_methods(data.get("methods"), errs)
    errs.raise_if_any()
    return data
