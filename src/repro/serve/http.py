"""Minimal HTTP/1.1 framing over asyncio streams.

The service speaks just enough HTTP for its API and refuses the rest
*loudly*: every limit (header block, body size, read deadline) maps to a
specific status code, and every error response is the same structured
JSON envelope the validators use, so clients parse one shape for every
failure. Connections are one-request: the response carries
``Connection: close`` and the body is Content-Length framed — the
simplest framing that can't desynchronize, which matters more here than
keep-alive throughput (the expensive part of a request is the sweep, not
the handshake).

Hostile-client posture, encoded as hard limits rather than heuristics:

* request line + headers must arrive within ``timeout`` seconds and fit
  in ``max_header`` bytes (slow-loris → 408, oversized → 431);
* bodies require ``Content-Length`` (chunked encoding → 501) and are
  rejected *before reading* when the declared length exceeds
  ``max_body`` (→ 413), so a hostile declaration costs no memory;
* a short body (client lied or died) → 400, never a hang.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

REASONS = {
    200: "OK", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 401: "Unauthorized", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout", 409: "Conflict",
    411: "Length Required", 413: "Payload Too Large",
    415: "Unsupported Media Type", 429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error", 501: "Not Implemented",
    503: "Service Unavailable",
}

JSON_TYPE = "application/json"
NDJSON_TYPE = "application/x-ndjson"
METHODS_WITH_BODY = ("POST", "PUT", "PATCH")


class HttpError(Exception):
    """An HTTP-level rejection carrying its full structured response."""

    def __init__(
        self,
        status: int,
        title: str,
        fields: Optional[List[Dict[str, str]]] = None,
        headers: Optional[Dict[str, str]] = None,
        **extra: Any,
    ) -> None:
        super().__init__(f"{status} {title}")
        self.status = status
        self.title = title
        self.fields = fields or []
        self.headers = headers or {}
        self.extra = extra

    def to_response(self) -> "Response":
        body: Dict[str, Any] = {
            "error": {"status": self.status, "title": self.title, "fields": self.fields}
        }
        body["error"].update(self.extra)
        return Response.json(self.status, body, headers=self.headers)


@dataclass
class Request:
    """One parsed request: immutable input to the routing layer."""

    method: str
    path: str
    query: Dict[str, List[str]]
    headers: Dict[str, str]
    body: bytes
    client: str = "-"

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    def query_flag(self, name: str) -> bool:
        values = self.query.get(name, [])
        return bool(values) and values[-1] not in ("0", "false", "no", "")


@dataclass
class Response:
    """One response; ``stream`` switches to EOF-delimited NDJSON."""

    status: int
    body: bytes = b""
    content_type: str = JSON_TYPE
    headers: Dict[str, str] = field(default_factory=dict)
    stream: Optional[Any] = None  # async iterator of bytes chunks

    @classmethod
    def json(
        cls,
        status: int,
        payload: Any,
        headers: Optional[Dict[str, str]] = None,
    ) -> "Response":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        return cls(status=status, body=body, headers=dict(headers or {}))

    def head_bytes(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        headers = dict(self.headers)
        headers.setdefault("content-type", self.content_type)
        headers.setdefault("connection", "close")
        if self.stream is None:
            headers.setdefault("content-length", str(len(self.body)))
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_header: int = 16384,
    max_body: int = 2 * 1024 * 1024,
    timeout: float = 30.0,
    client: str = "-",
) -> Optional[Request]:
    """Read and parse one request; ``None`` on a clean immediate EOF.

    Raises :class:`HttpError` for everything a client can do wrong at
    the framing layer; the connection handler turns that into a
    response and closes.
    """
    try:
        head = await asyncio.wait_for(
            _read_head(reader, max_header), timeout=timeout
        )
    except asyncio.TimeoutError:
        raise HttpError(408, "timed out reading request head")
    except asyncio.LimitOverrunError:
        raise HttpError(431, f"request head exceeds {max_header} bytes")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "connection closed mid-request")
    if head is None:
        return None

    method, target, headers = head
    if "transfer-encoding" in headers:
        raise HttpError(501, "transfer-encoding is not supported; send Content-Length")

    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
            if length < 0:
                raise ValueError
        except ValueError:
            raise HttpError(400, f"malformed Content-Length {raw_length!r}")
        if length > max_body:
            raise HttpError(
                413,
                f"body of {length} bytes exceeds the {max_body} byte limit",
            )
        if length:
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=timeout
                )
            except asyncio.TimeoutError:
                raise HttpError(408, "timed out reading request body")
            except asyncio.IncompleteReadError as exc:
                raise HttpError(
                    400,
                    f"body truncated: Content-Length {length}, got {len(exc.partial)} bytes",
                )
    elif method in METHODS_WITH_BODY:
        raise HttpError(411, f"{method} requires a Content-Length header")

    split = urlsplit(target)
    return Request(
        method=method,
        path=unquote(split.path),
        query=parse_qs(split.query),
        headers=headers,
        body=body,
        client=client,
    )


async def _read_head(
    reader: asyncio.StreamReader, max_header: int
) -> Optional[Tuple[str, str, Dict[str, str]]]:
    # readuntil leaves post-head bytes buffered for the body read and
    # enforces the stream limit (set to max_header at server creation),
    # surfacing oversized heads as LimitOverrunError → 431.
    head = await reader.readuntil(b"\r\n\r\n")
    if len(head) > max_header:
        raise HttpError(431, f"request head exceeds {max_header} bytes")

    try:
        lines = head.decode("latin-1").splitlines()
    except UnicodeDecodeError:
        raise HttpError(400, "undecodable request head")
    if not lines:
        raise HttpError(400, "empty request")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line.strip():
            continue
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method, target, headers


async def write_response(writer: asyncio.StreamWriter, response: Response) -> None:
    """Write one response (buffered or streamed) and close the socket."""
    writer.write(response.head_bytes())
    if response.stream is None:
        writer.write(response.body)
        await writer.drain()
    else:
        async for chunk in response.stream:
            writer.write(chunk)
            await writer.drain()
