"""Authentication hook: a pluggable gate in front of the job API.

The service ships two backends — ``none`` (open, the default: the
reference deployment is a lab-internal tool) and ``token`` (a single
static bearer token) — behind a registry, so a deployment can add its
own (mTLS header introspection, an org SSO sidecar, ...) without
touching the routing layer. An auth backend is one callable: it sees
the request and returns ``None`` to admit it or an
:class:`~repro.serve.http.HttpError` to reject it; raising is treated
as a 500-class server bug, so backends should *return* their errors.

``/v1/healthz`` and ``/v1/metrics`` are deliberately outside the gate:
probes and scrapers must keep working when credentials rot.
"""

from __future__ import annotations

import hmac
from typing import Callable, Dict, Optional

from repro.errors import ExperimentError
from repro.serve.http import HttpError, Request

#: An auth backend: request -> None (admit) | HttpError (reject).
AuthHook = Callable[[Request], Optional[HttpError]]


def allow_all(request: Request) -> Optional[HttpError]:
    """The ``none`` backend: every request is admitted."""
    return None


class TokenAuth:
    """The ``token`` backend: one static bearer token.

    Comparison is constant-time (:func:`hmac.compare_digest`) — a
    timing oracle on a long-running service is exactly the kind of slow
    leak a test harness never catches.
    """

    def __init__(self, token: str) -> None:
        if not token:
            raise ExperimentError("token auth needs a non-empty token")
        self._token = token

    def __call__(self, request: Request) -> Optional[HttpError]:
        header = request.header("authorization")
        scheme, _, value = header.partition(" ")
        if scheme.lower() != "bearer" or not hmac.compare_digest(
            value.strip(), self._token
        ):
            return HttpError(
                401,
                "missing or invalid bearer token",
                headers={"www-authenticate": 'Bearer realm="repro-serve"'},
            )
        return None


#: Factories keyed by backend name; each takes the configured token
#: (possibly None) and returns an :data:`AuthHook`.
AUTH_BACKENDS: Dict[str, Callable[[Optional[str]], AuthHook]] = {
    "none": lambda token: allow_all,
    "token": lambda token: TokenAuth(token or ""),
}


def make_auth(name: str, token: Optional[str] = None) -> AuthHook:
    """Resolve an auth backend by registry name."""
    try:
        factory = AUTH_BACKENDS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown auth backend {name!r}; expected one of {sorted(AUTH_BACKENDS)}"
        )
    return factory(token)
