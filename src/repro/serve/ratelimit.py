"""Token-bucket rate limiting for the submission endpoint.

Submissions are the one endpoint where a misbehaving client can do real
damage (each accepted document becomes durable state and queued work),
so the limiter sits there and only there. Classic token bucket: a
client may burst up to ``burst`` submissions, then is throttled to
``rate`` per second; rejections are 429s carrying ``Retry-After``.

Buckets are per-client (peer address) with an LRU-ish cap so an
address-rotating client can't grow memory without bound; the clock is
``time.monotonic`` so a wall-clock step never mints or burns tokens.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Optional, Tuple

from repro.errors import ExperimentError

#: Most client buckets kept before the least recently seen is evicted.
MAX_BUCKETS = 4096


class TokenBucket:
    """One client's bucket: ``rate`` tokens/second, capacity ``burst``."""

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def take(self, now: float) -> Tuple[bool, float]:
        """Try to take one token; returns (granted, seconds-until-next)."""
        self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Per-client token buckets behind one lock (see module docstring)."""

    def __init__(self, rate: float, burst: Optional[float] = None) -> None:
        if rate <= 0:
            raise ExperimentError(f"rate limit must be > 0 requests/second, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate * 2)
        if self.burst < 1:
            raise ExperimentError(f"burst must allow at least one request, got {self.burst}")
        self._lock = threading.Lock()
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()

    def allow(self, client: str) -> Tuple[bool, float]:
        """Admit or throttle ``client``; returns (granted, retry-after)."""
        now = time.monotonic()
        with self._lock:
            bucket = self._buckets.pop(client, None)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
            self._buckets[client] = bucket  # re-insert: most recently seen
            while len(self._buckets) > MAX_BUCKETS:
                self._buckets.popitem(last=False)
            return bucket.take(now)
