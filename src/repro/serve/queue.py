"""Bounded job queue + worker pool over the ExecutionBackend layer.

The queue is scheduling state only — the durable truth lives in the
:class:`~repro.serve.store.JobStore` and each job's checkpoint journal.
That split is what makes drain and crash recovery simple: dropping the
in-memory queue loses nothing, because boot re-enqueues every ``queued``
row and journal replay resumes every partially-run job.

Execution: each worker is an asyncio task that claims a job id
(compare-and-swap in the store, so a raced cancel wins cleanly) and
runs the sweep on a thread pool via the same
:func:`~repro.feast.runner.run_experiment` entry point a batch caller
uses — with ``checkpoint=`` always set, which routes even serial runs
through the supervised engine and gives every job the journal. The
job's progress callback is the service's only hook into a run: it
streams progress to the job's status file, mirrors it into the store,
and raises :class:`~repro.serve.jobs.JobCancelled` when a cancel flag
appears — *after* the driver has journaled the chunk, so cancellation
never loses completed work.

Graceful drain (SIGTERM): workers stop claiming, in-flight jobs run to
completion, queued jobs stay ``queued`` in the store for the next boot.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional

from repro.feast.runner import run_experiment
from repro.obs.export import atomic_write_text
from repro.obs.live import StatusStream
from repro.serve.jobs import JobCancelled, JobState, compile_job
from repro.serve.metrics import ServiceMetrics
from repro.serve.store import JobStore

#: Result document format pinned in every result file.
RESULT_FORMAT = "repro-serve-result"
RESULT_VERSION = 1

_STOP = object()


class JobPaths:
    """Filesystem layout of one data directory."""

    def __init__(self, data_dir: str) -> None:
        self.data_dir = os.path.abspath(data_dir)
        self.jobs_dir = os.path.join(self.data_dir, "jobs")
        self.results_dir = os.path.join(self.data_dir, "results")
        os.makedirs(self.jobs_dir, exist_ok=True)
        os.makedirs(self.results_dir, exist_ok=True)

    def db(self) -> str:
        return os.path.join(self.data_dir, "jobs.sqlite")

    def checkpoint(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.ckpt")

    def status(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.status.jsonl")

    def result(self, job_id: str) -> str:
        return os.path.join(self.results_dir, f"{job_id}.json")


def result_payload(job_id: str, name: str, result) -> Dict[str, Any]:
    """The result document: records exactly as the batch engine emits them."""
    return {
        "format": RESULT_FORMAT,
        "version": RESULT_VERSION,
        "job": job_id,
        "name": name,
        "n_records": len(result.records),
        "elapsed_seconds": result.elapsed_seconds,
        "records": [record.as_dict() for record in result.records],
    }


class WorkerPool:
    """N asyncio workers draining one bounded queue (see module docstring)."""

    def __init__(
        self,
        store: JobStore,
        paths: JobPaths,
        metrics: ServiceMetrics,
        *,
        workers: int = 2,
        queue_size: int = 64,
        backend: str = "serial",
        shards: int = 2,
    ) -> None:
        self.store = store
        self.paths = paths
        self.metrics = metrics
        self.workers = max(1, workers)
        self.backend = backend
        self.shards = shards
        self.queue: "asyncio.Queue" = asyncio.Queue(maxsize=queue_size)
        self._tasks: List["asyncio.Task"] = []
        self._draining = False
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve-job"
        )

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> int:
        """Spawn workers and re-enqueue every resumable job; returns count."""
        for i in range(self.workers):
            self._tasks.append(asyncio.create_task(self._worker(), name=f"serve-worker-{i}"))
        resumed = 0
        for job_id in self.store.recover():
            if self.try_enqueue(job_id):
                resumed += 1
        return resumed

    def try_enqueue(self, job_id: str) -> bool:
        """Admit a job to the in-memory queue; False when full (503)."""
        if self._draining:
            return False
        try:
            self.queue.put_nowait(job_id)
        except asyncio.QueueFull:
            return False
        self.metrics.queue_depth(self.queue.qsize())
        return True

    async def drain(self) -> None:
        """Stop claiming, finish in-flight jobs, leave the rest queued."""
        self._draining = True
        for _ in self._tasks:
            # One wake-up token per worker; workers blocked on get()
            # see it immediately, busy workers see _draining after
            # finishing their current job.
            try:
                self.queue.put_nowait(_STOP)
            except asyncio.QueueFull:
                pass
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)

    # -- execution -----------------------------------------------------
    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = await self.queue.get()
            self.metrics.queue_depth(self.queue.qsize())
            if item is _STOP or self._draining:
                break
            if not self.store.mark_running(item):
                continue  # cancelled (or vanished) before a worker got it
            await loop.run_in_executor(self._executor, self._execute, item)

    def _execute(self, job_id: str) -> None:
        """Run one job on a worker thread; never lets an exception escape."""
        row = self.store.get(job_id)
        if row is None:
            return
        stream = StatusStream(
            self.paths.status(job_id), experiment=row.name, run_id=job_id
        )
        try:
            config = compile_job(row.document)
        except BaseException as exc:  # validated at the edge; belt and braces
            self._finish(job_id, JobState.FAILED, stream,
                         error=f"{type(exc).__name__}: {exc}")
            return

        def on_progress(done: int, total: int) -> None:
            self.store.progress(job_id, done, total)
            stream.emit("progress", done=done, total=total)
            if self.store.cancel_requested(job_id):
                raise JobCancelled(job_id)

        started = time.monotonic()
        try:
            result = run_experiment(
                config,
                progress=on_progress,
                jobs=1,
                checkpoint=self.paths.checkpoint(job_id),
                backend=self.backend,
                shards=self.shards,
            )
        except JobCancelled:
            self._finish(job_id, JobState.CANCELLED, stream)
            return
        except KeyboardInterrupt:
            self._finish(job_id, JobState.FAILED, stream, error="interrupted")
            raise
        except BaseException as exc:
            self._finish(job_id, JobState.FAILED, stream,
                         error=f"{type(exc).__name__}: {exc}")
            return

        if result.quarantined:
            # The supervised engine degrades gracefully — quarantined
            # chunks leave a *partial* result. A batch caller sees the
            # gap in result.quarantined; a service client only sees the
            # records, so a silent gap would break the byte-identity
            # contract. done means complete, anything less is failed.
            chunks = ", ".join(
                f"({scenario}, {index})" for scenario, index in result.quarantined
            )
            detail = next(
                (f.message for f in result.failures if (f.scenario, f.index)
                 in set(result.quarantined)),
                "",
            )
            self._finish(
                job_id, JobState.FAILED, stream,
                error=f"{len(result.quarantined)} chunk(s) quarantined: {chunks}"
                + (f" — {detail}" if detail else ""),
            )
            return

        payload = result_payload(job_id, row.name, result)
        atomic_write_text(
            self.paths.result(job_id), json.dumps(payload, sort_keys=True) + "\n"
        )
        elapsed = time.monotonic() - started
        self._finish(job_id, JobState.DONE, stream,
                     records=payload["n_records"], elapsed_seconds=elapsed)

    def _finish(
        self,
        job_id: str,
        state: str,
        stream: StatusStream,
        error: Optional[str] = None,
        **final_fields: Any,
    ) -> None:
        self.store.finish(job_id, state, error=error)
        row = self.store.get(job_id)
        if row is not None and row.started is not None and row.finished is not None:
            self.metrics.job_finished(state, max(0.0, row.finished - row.started))
        stream.close(state=state, error=error, **final_fields)
