"""SQLite job store: the service's durable control plane.

The checkpoint journal (data plane) already makes *trial results*
durable; this store makes the *queue* durable — which jobs exist, what
state each is in, and where its artifacts live. Together they give the
restart contract: a killed server reboots, flips orphaned ``running``
rows back to ``queued``, re-enqueues them, and the journal replay turns
re-execution into resumption.

Concurrency model: one connection, one lock. Requests arrive on the
event-loop thread and execute on worker threads, so every access takes
the store lock; job volumes (hundreds, not millions of *rows* — the
millions are trials, which live in journals) make a single serialized
connection the simplest correct choice. State changes that can race
(cancel vs. worker claim) are compare-and-swap ``UPDATE ... WHERE
state = ?`` statements, so exactly one side wins and the loser observes
the winner's state.

Durability: WAL journal with ``synchronous=FULL`` — a SIGKILL after a
successful submit response must never lose the job, and the write rate
(a handful of updates per job) makes the fsync cost irrelevant.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import ExperimentError
from repro.serve.jobs import JobState

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id TEXT PRIMARY KEY,
    name TEXT NOT NULL,
    state TEXT NOT NULL,
    document TEXT NOT NULL,
    error TEXT,
    created REAL NOT NULL,
    started REAL,
    finished REAL,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    attempts INTEGER NOT NULL DEFAULT 0,
    done_trials INTEGER,
    total_trials INTEGER
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state);
"""


@dataclass
class JobRow:
    """One job row, decoded."""

    id: str
    name: str
    state: str
    document: Dict[str, Any]
    error: Optional[str]
    created: float
    started: Optional[float]
    finished: Optional[float]
    cancel_requested: bool
    attempts: int
    done_trials: Optional[int]
    total_trials: Optional[int]

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "id": self.id,
            "name": self.name,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "cancel_requested": self.cancel_requested,
            "attempts": self.attempts,
        }
        if self.total_trials:
            out["progress"] = {
                "done": self.done_trials or 0,
                "total": self.total_trials,
            }
        if self.error:
            out["error"] = self.error
        return out


class JobStore:
    """Thread-safe SQLite-backed job table (see module docstring)."""

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            self.path, check_same_thread=False, isolation_level=None
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=FULL")
            self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- writes --------------------------------------------------------
    def create(self, job_id: str, name: str, document: Dict[str, Any]) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT INTO jobs (id, name, state, document, created)"
                " VALUES (?, ?, ?, ?, ?)",
                (job_id, name, JobState.QUEUED, json.dumps(document, sort_keys=True),
                 time.time()),
            )

    def delete(self, job_id: str) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM jobs WHERE id = ?", (job_id,))

    def mark_running(self, job_id: str) -> bool:
        """Claim a queued job; False if a cancel (or anything) won the race."""
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET state = ?, started = ?, attempts = attempts + 1"
                " WHERE id = ? AND state = ?",
                (JobState.RUNNING, time.time(), job_id, JobState.QUEUED),
            )
            return cur.rowcount == 1

    def finish(self, job_id: str, state: str, error: Optional[str] = None) -> bool:
        """Move a running job to a terminal state."""
        if state not in JobState.TERMINAL:
            raise ExperimentError(f"finish() requires a terminal state, got {state!r}")
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET state = ?, finished = ?, error = ?"
                " WHERE id = ? AND state = ?",
                (state, time.time(), error, job_id, JobState.RUNNING),
            )
            return cur.rowcount == 1

    def request_cancel(self, job_id: str) -> Optional[str]:
        """Flag a cancel; returns the post-request state (None = unknown id).

        A queued job cancels immediately; a running one keeps running
        until its next progress checkpoint observes the flag.
        """
        with self._lock:
            cur = self._conn.execute(
                "UPDATE jobs SET cancel_requested = 1 WHERE id = ?", (job_id,)
            )
            if cur.rowcount == 0:
                return None
            self._conn.execute(
                "UPDATE jobs SET state = ?, finished = ? WHERE id = ? AND state = ?",
                (JobState.CANCELLED, time.time(), job_id, JobState.QUEUED),
            )
            row = self._conn.execute(
                "SELECT state FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
            return row["state"] if row else None

    def progress(self, job_id: str, done: int, total: int) -> None:
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET done_trials = ?, total_trials = ? WHERE id = ?",
                (done, total, job_id),
            )

    def recover(self) -> List[str]:
        """Boot-time recovery: orphaned ``running`` rows re-queue.

        Returns every queued job id in submission order, for
        re-enqueueing. A job whose cancel was requested before the
        crash goes straight to ``cancelled`` instead of re-running.
        """
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = ?, finished = ?"
                " WHERE state IN (?, ?) AND cancel_requested = 1",
                (JobState.CANCELLED, time.time(), JobState.QUEUED, JobState.RUNNING),
            )
            self._conn.execute(
                "UPDATE jobs SET state = ? WHERE state = ?",
                (JobState.QUEUED, JobState.RUNNING),
            )
            rows = self._conn.execute(
                "SELECT id FROM jobs WHERE state = ? ORDER BY rowid",
                (JobState.QUEUED,),
            ).fetchall()
            return [row["id"] for row in rows]

    # -- reads ---------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRow]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return self._decode(row) if row else None

    def state_of(self, job_id: str) -> Optional[str]:
        with self._lock:
            row = self._conn.execute(
                "SELECT state FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return row["state"] if row else None

    def cancel_requested(self, job_id: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT cancel_requested FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return bool(row and row["cancel_requested"])

    def list(self, limit: int = 100) -> List[JobRow]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs ORDER BY rowid DESC LIMIT ?", (limit,)
            ).fetchall()
        return [self._decode(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        return {row["state"]: row["n"] for row in rows}

    @staticmethod
    def _decode(row: sqlite3.Row) -> JobRow:
        return JobRow(
            id=row["id"],
            name=row["name"],
            state=row["state"],
            document=json.loads(row["document"]),
            error=row["error"],
            created=row["created"],
            started=row["started"],
            finished=row["finished"],
            cancel_requested=bool(row["cancel_requested"]),
            attempts=row["attempts"],
            done_trials=row["done_trials"],
            total_trials=row["total_trials"],
        )
