"""Job documents, the job state machine, and the document compiler.

A *job document* is the service's wire format: one JSON object naming a
workload (either explicit task graphs in the ``repro-taskgraph`` schema
or parameters for the random generator), a platform sweep, and the
deadline-assignment methods to compare. :func:`compile_job` lowers a
validated document into an :class:`~repro.feast.config.ExperimentConfig`
— the same object a direct :func:`~repro.feast.runner.run_experiment`
call takes — which is what makes the byte-identity contract hold by
construction: the service adds no execution semantics of its own.

Determinism matters twice here: the same document must compile to the
same config after a server restart (so the checkpoint journal's
config fingerprint still matches and the job resumes instead of being
rejected), and two different explicit workloads must *not* share a
fingerprint. :class:`ExplicitWorkload` therefore carries a stable
content-digest identity in ``__qualname__``, which is exactly the field
:func:`~repro.feast.persistence.config_fingerprint` folds in for
arbitrary factories.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ExperimentError
from repro.feast.config import MethodSpec, ExperimentConfig
from repro.graph.generator import RandomGraphConfig
from repro.graph.serialization import graph_from_dict
from repro.graph.taskgraph import TaskGraph

#: Wire format / version pinned in every job document.
JOB_FORMAT = "repro-job"
JOB_VERSION = 1

#: Scenario label explicit-graph jobs run under. Scenarios only vary the
#: generator's execution-time deviation, which fixed graphs ignore, so
#: one canonical label keeps records and chunk keys well-formed.
EXPLICIT_SCENARIO = "MDET"

#: Submission caps — bound memory per request, not expressiveness.
MAX_GRAPHS = 256
MAX_N_GRAPHS = 4096
MAX_SYSTEM_SIZES = 64


class JobState:
    """The job lifecycle: ``queued → running → done|failed|cancelled``.

    ``queued → cancelled`` is the only shortcut (cancel before a worker
    picks the job up). Terminal states have no outgoing edges; the store
    enforces transitions with compare-and-swap updates so a cancel
    racing a worker claim resolves to exactly one winner.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
    TERMINAL = (DONE, FAILED, CANCELLED)
    TRANSITIONS = {
        QUEUED: (RUNNING, CANCELLED),
        RUNNING: (DONE, FAILED, CANCELLED),
        DONE: (),
        FAILED: (),
        CANCELLED: (),
    }

    #: Monotonic rank for "states never regress" assertions: every legal
    #: transition strictly increases it.
    ORDER = {QUEUED: 0, RUNNING: 1, DONE: 2, FAILED: 2, CANCELLED: 2}


class JobCancelled(BaseException):
    """Raised inside a worker to abort a run after a cooperative cancel.

    Deliberately a ``BaseException``: progress callbacks that raise a
    plain ``Exception`` are *detached* by
    :meth:`~repro.feast.instrumentation.Instrumentation.completed`
    (a broken observer must not kill a sweep), while ``BaseException``
    propagates — the same contract that lets Ctrl-C abort a run. Every
    chunk completed before the cancel is already journaled, because the
    driver journals before it fires progress callbacks.
    """

    def __init__(self, job_id: str) -> None:
        super().__init__(f"job {job_id} cancelled")
        self.job_id = job_id


class ExplicitWorkload:
    """Picklable graph factory serving user-supplied graph documents.

    Graph ``index`` of the single scenario is
    ``graph_from_dict(documents[index])`` — decoded fresh per call, so a
    trial can never see another trial's annotations. The factory opts
    into the index-aware calling convention via ``needs_trial_coords``
    (see :func:`~repro.feast.runner.graph_for_trial`) and ignores the
    RNG: explicit workloads are already fully determined.
    """

    needs_trial_coords = True

    def __init__(self, documents: List[Dict[str, Any]]) -> None:
        if not documents:
            raise ExperimentError("ExplicitWorkload needs at least one graph")
        self.documents = [dict(doc) for doc in documents]
        blob = json.dumps(self.documents, sort_keys=True)
        digest = hashlib.blake2b(blob.encode("utf-8"), digest_size=8).hexdigest()
        # config_fingerprint() identifies a factory by __qualname__; a
        # content digest there makes resume-after-restart accept the
        # journal and distinct workloads fingerprint apart.
        self.__qualname__ = f"repro.serve.jobs.ExplicitWorkload[{digest}]"

    def __call__(
        self,
        graph_config: RandomGraphConfig,
        rng,
        scenario: Optional[str] = None,
        index: Optional[int] = None,
    ) -> TaskGraph:
        if index is None:
            raise ExperimentError(
                "ExplicitWorkload requires the index-aware factory protocol"
            )
        return graph_from_dict(self.documents[index % len(self.documents)])

    def __repr__(self) -> str:
        return f"<{self.__qualname__} n={len(self.documents)}>"


def _compile_methods(specs: List[Dict[str, Any]]) -> Tuple[MethodSpec, ...]:
    return tuple(MethodSpec(**spec) for spec in specs)


def compile_job(document: Dict[str, Any]) -> ExperimentConfig:
    """Lower a validated job document into an :class:`ExperimentConfig`.

    Pure and deterministic: the same document always yields a config
    with the same :func:`~repro.feast.persistence.config_fingerprint`,
    which is the property restart-resume rests on. Raises
    :class:`ExperimentError` (or another :class:`~repro.errors.ReproError`)
    on semantic violations — callers at the HTTP edge map those to
    structured 400s.
    """
    name = document.get("name") or "job"
    platform = document.get("platform") or {}
    methods = _compile_methods(document["methods"])

    common = dict(
        name=name,
        description="repro.serve job",
        methods=methods,
        system_sizes=tuple(platform.get("system_sizes") or (2, 4)),
        topology=platform.get("topology", "bus"),
        policy=platform.get("policy", "EDF"),
        respect_release_times=bool(platform.get("respect_release_times", False)),
        speed_profile=platform.get("speed_profile", "uniform"),
    )

    graphs = document.get("graphs")
    if graphs is not None:
        return ExperimentConfig(
            graph_config=RandomGraphConfig(),
            scenarios=(EXPLICIT_SCENARIO,),
            n_graphs=len(graphs),
            # The seed feeds the generator RNG, which explicit workloads
            # ignore; pinning it keeps the fingerprint canonical.
            seed=2026,
            graph_factory=ExplicitWorkload(graphs),
            **common,
        )

    workload = document["workload"]
    graph_config = RandomGraphConfig(**{
        key: tuple(value) if isinstance(value, list) else value
        for key, value in (workload.get("graph_config") or {}).items()
    })
    return ExperimentConfig(
        graph_config=graph_config,
        scenarios=tuple(workload.get("scenarios") or ("LDET", "MDET", "HDET")),
        n_graphs=int(workload.get("n_graphs", 8)),
        seed=int(workload.get("seed", 2026)),
        **common,
    )
