"""Service metrics: request counters, queue depth, latency histograms.

A thread-safe facade over :class:`~repro.obs.metrics.MetricsRegistry` —
the same registry the batch engine uses, rendered by the same
OpenMetrics exporter, so one scrape config covers batch runs and the
service. The batch engine merges registries *between* processes and
never shares one across threads; the service does the opposite (many
request/worker threads, one registry), hence the lock here rather than
in the registry.

Naming: every series lives under ``serve.*`` (the exporter prefixes
``repro_`` and sanitizes dots to underscores). Per-route and per-status
series are separate counters rather than labels — the exporter is
label-free by design, and the route space is tiny and fixed.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry

#: Buckets for whole-job submit→done latency: jobs span milliseconds
#: (trivial documents) to many minutes (paper-scale sweeps).
JOB_LATENCY_BUCKETS = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0,
)


class ServiceMetrics:
    """All counters/gauges/histograms of one service process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._registry = MetricsRegistry()
        self.started = time.time()

    def request(self, route: str, status: int, seconds: float) -> None:
        with self._lock:
            self._registry.count("serve.requests")
            self._registry.count(f"serve.requests.status.{status}")
            self._registry.count(f"serve.requests.route.{route}")
            self._registry.observe(
                "serve.request_seconds", seconds, buckets=LATENCY_BUCKETS
            )

    def job_submitted(self) -> None:
        with self._lock:
            self._registry.count("serve.jobs.submitted")

    def job_finished(self, state: str, seconds: float) -> None:
        with self._lock:
            self._registry.count(f"serve.jobs.{state}")
            self._registry.observe(
                "serve.job_seconds", seconds, buckets=JOB_LATENCY_BUCKETS
            )

    def queue_depth(self, depth: int) -> None:
        with self._lock:
            self._registry.gauge("serve.queue_depth", depth)

    def rejected(self, reason: str) -> None:
        with self._lock:
            self._registry.count(f"serve.rejected.{reason}")

    def snapshot(self) -> MetricsRegistry:
        """A consistent copy for the exporter (scrapes race updates)."""
        with self._lock:
            clone = MetricsRegistry()
            clone.merge(self._registry)
            return clone

    def as_dict(self) -> Dict[str, Any]:
        return self.snapshot().as_dict()
