"""The service: routing, edge gates, and lifecycle.

``ReproService`` owns every layer below it (store, worker pool,
metrics, auth, rate limiter) and exposes the versioned API:

========  ==========================  =====================================
method    path                        semantics
========  ==========================  =====================================
POST      /v1/jobs                    submit a job document → 202 + id
GET       /v1/jobs                    most recent jobs, newest first
GET       /v1/jobs/{id}               state + progress
GET       /v1/jobs/{id}/result        the records (409 until terminal)
GET       /v1/jobs/{id}/events        NDJSON status stream (``?follow=1``)
DELETE    /v1/jobs/{id}               cooperative cancel → 202
GET       /v1/healthz                 liveness + queue/job counts
GET       /v1/metrics                 OpenMetrics exposition
========  ==========================  =====================================

Error contract: every failure is the one JSON envelope
``{"error": {"status", "title", "fields": [{"path", "message"}]}}``.
Client-attributable problems are 4xx — the dispatch loop converts
:class:`~repro.serve.http.HttpError` and
:class:`~repro.serve.validation.DocumentError` and catches everything
else as a logged 500, which the adversarial suite pins as unreachable
for malformed input.

Lifecycle: ``run_service`` installs SIGTERM/SIGINT handlers that
trigger a graceful drain (stop accepting, finish in-flight jobs,
persist the rest); ``ServiceHandle`` runs the same service on a
background thread for tests and benchmarks.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import secrets
import sys
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, AsyncIterator, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.obs.promexport import openmetrics_text
from repro.serve import http
from repro.serve.auth import make_auth
from repro.serve.http import HttpError, Request, Response
from repro.serve.jobs import JobState, compile_job
from repro.serve.metrics import ServiceMetrics
from repro.serve.queue import JobPaths, WorkerPool
from repro.serve.ratelimit import RateLimiter
from repro.serve.store import JobStore
from repro.serve.validation import DocumentError, parse_json_strict, validate_job

_JOB_ID = r"(?P<job_id>[0-9a-f]{16})"
_ROUTES: Tuple[Tuple[str, "re.Pattern", str], ...] = tuple(
    (method, re.compile(pattern), name)
    for method, pattern, name in (
        ("GET", r"^/v1/healthz$", "healthz"),
        ("GET", r"^/v1/metrics$", "metrics"),
        ("POST", r"^/v1/jobs$", "submit"),
        ("GET", r"^/v1/jobs$", "list"),
        ("GET", rf"^/v1/jobs/{_JOB_ID}$", "job"),
        ("GET", rf"^/v1/jobs/{_JOB_ID}/result$", "result"),
        ("GET", rf"^/v1/jobs/{_JOB_ID}/events$", "events"),
        ("DELETE", rf"^/v1/jobs/{_JOB_ID}$", "cancel"),
    )
)
#: Routes reachable without credentials: probes and scrapers.
_OPEN_ROUTES = ("healthz", "metrics")


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is announced on stderr
    workers: int = 2
    backend: str = "serial"
    shards: int = 2
    queue_size: int = 64
    data_dir: str = "repro-serve-data"
    max_body: int = 2 * 1024 * 1024
    request_timeout: float = 30.0
    auth: str = "none"
    auth_token: Optional[str] = None
    rate_limit: Optional[float] = None
    rate_burst: Optional[float] = None
    #: Upper bound on one ``?follow=1`` events stream, seconds.
    follow_timeout: float = 300.0


class ReproService:
    """One service instance bound to one data directory."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.paths = JobPaths(config.data_dir)
        self.store = JobStore(self.paths.db())
        self.metrics = ServiceMetrics()
        self.auth = make_auth(config.auth, config.auth_token)
        self.limiter = (
            RateLimiter(config.rate_limit, config.rate_burst)
            if config.rate_limit is not None
            else None
        )
        self.pool = WorkerPool(
            self.store,
            self.paths,
            self.metrics,
            workers=config.workers,
            queue_size=config.queue_size,
            backend=config.backend,
            shards=config.shards,
        )
        self.run_id = f"{int(time.time() * 1000):x}-{os.getpid():x}"
        self.port: Optional[int] = None
        self._server: Optional["asyncio.base_events.Server"] = None

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> int:
        """Bind, recover, and start serving; returns the bound port."""
        resumed = await self.pool.start()
        if resumed:
            print(f"repro serve: resumed {resumed} job(s) from {self.paths.data_dir}",
                  file=sys.stderr, flush=True)
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=max(65536, self.config.max_body),
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def shutdown(self) -> None:
        """Graceful drain: close the listener, finish in-flight jobs."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.pool.drain()
        self.store.close()

    # -- connection handling -------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        client = peer[0] if isinstance(peer, tuple) else "-"
        route = "unmatched"
        started = time.monotonic()
        status = 0
        try:
            try:
                request = await http.read_request(
                    reader,
                    max_header=16384,
                    max_body=self.config.max_body,
                    timeout=self.config.request_timeout,
                    client=client,
                )
                if request is None:
                    return
                route, response = await self._dispatch(request)
            except HttpError as exc:
                response = exc.to_response()
            except DocumentError as exc:
                response = _document_response(exc)
            except ReproError as exc:
                response = HttpError(400, str(exc)).to_response()
            except Exception as exc:
                traceback.print_exc(file=sys.stderr)
                response = HttpError(
                    500, f"internal error: {type(exc).__name__}"
                ).to_response()
            status = response.status
            await http.write_response(writer, response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.metrics.request(route, status, time.monotonic() - started)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(self, request: Request) -> Tuple[str, Response]:
        matched_methods = []
        for method, pattern, name in _ROUTES:
            match = pattern.match(request.path)
            if not match:
                continue
            if method != request.method:
                matched_methods.append(method)
                continue
            if name not in _OPEN_ROUTES:
                denial = self.auth(request)
                if denial is not None:
                    raise denial
            handler = getattr(self, f"_route_{name}")
            return name, await handler(request, **match.groupdict())
        if matched_methods:
            raise HttpError(
                405,
                f"method {request.method} not allowed for {request.path}",
                headers={"allow": ", ".join(sorted(set(matched_methods)))},
            )
        raise HttpError(404, f"no route for {request.path}")

    # -- routes --------------------------------------------------------
    async def _route_submit(self, request: Request) -> Response:
        if self.limiter is not None:
            granted, retry_after = self.limiter.allow(request.client)
            if not granted:
                self.metrics.rejected("rate_limited")
                raise HttpError(
                    429,
                    "rate limit exceeded",
                    headers={"retry-after": f"{retry_after:.3f}"},
                )
        content_type = request.header("content-type").split(";")[0].strip().lower()
        if content_type != http.JSON_TYPE:
            self.metrics.rejected("content_type")
            raise HttpError(
                415,
                f"expected content-type {http.JSON_TYPE}, got {content_type or '(none)'}",
            )
        try:
            document = validate_job(parse_json_strict(request.body))
            compile_job(document)  # belt and braces: must not fail post-validation
        except DocumentError:
            self.metrics.rejected("invalid_document")
            raise
        except ReproError as exc:
            self.metrics.rejected("invalid_document")
            raise HttpError(400, str(exc))

        job_id = secrets.token_hex(8)
        name = document.get("name") or "job"
        self.store.create(job_id, name, document)
        if not self.pool.try_enqueue(job_id):
            self.store.delete(job_id)
            self.metrics.rejected("queue_full")
            raise HttpError(
                503,
                f"job queue is full ({self.config.queue_size} deep); retry later",
                headers={"retry-after": "1"},
            )
        self.metrics.job_submitted()
        location = f"/v1/jobs/{job_id}"
        return Response.json(
            202,
            {"id": job_id, "name": name, "state": JobState.QUEUED, "location": location},
            headers={"location": location},
        )

    async def _route_list(self, request: Request) -> Response:
        rows = self.store.list(limit=100)
        return Response.json(200, {"jobs": [row.summary() for row in rows]})

    async def _route_job(self, request: Request, job_id: str) -> Response:
        row = self.store.get(job_id)
        if row is None:
            raise HttpError(404, f"unknown job {job_id}")
        return Response.json(200, row.summary())

    async def _route_result(self, request: Request, job_id: str) -> Response:
        row = self.store.get(job_id)
        if row is None:
            raise HttpError(404, f"unknown job {job_id}")
        if row.state != JobState.DONE:
            raise HttpError(
                409,
                f"job {job_id} is {row.state}, not done",
                state=row.state,
                **({"detail": row.error} if row.error else {}),
            )
        with open(self.paths.result(job_id), "rb") as fp:
            body = fp.read()
        return Response(status=200, body=body, content_type=http.JSON_TYPE)

    async def _route_cancel(self, request: Request, job_id: str) -> Response:
        row = self.store.get(job_id)
        if row is None:
            raise HttpError(404, f"unknown job {job_id}")
        if row.state in JobState.TERMINAL:
            raise HttpError(
                409, f"job {job_id} is already {row.state}", state=row.state
            )
        state = self.store.request_cancel(job_id)
        return Response.json(
            202, {"id": job_id, "state": state, "cancel_requested": True}
        )

    async def _route_events(self, request: Request, job_id: str) -> Response:
        if self.store.state_of(job_id) is None:
            raise HttpError(404, f"unknown job {job_id}")
        follow = request.query_flag("follow")
        stream = self._event_stream(job_id, follow)
        return Response(status=200, content_type=http.NDJSON_TYPE, stream=stream)

    async def _event_stream(self, job_id: str, follow: bool) -> AsyncIterator[bytes]:
        """Yield whole status lines; with ``follow``, tail until terminal.

        Reads only up to the last newline, so a concurrently appended
        (torn) line is never forwarded half-written.
        """
        path = self.paths.status(job_id)
        position = 0
        deadline = time.monotonic() + self.config.follow_timeout
        while True:
            chunk = b""
            if os.path.exists(path):
                with open(path, "rb") as fp:
                    fp.seek(position)
                    chunk = fp.read()
                complete = chunk.rfind(b"\n") + 1
                position += complete
                chunk = chunk[:complete]
            if chunk:
                yield chunk
            state = self.store.state_of(job_id)
            terminal = state is None or state in JobState.TERMINAL
            if terminal and not chunk:
                return
            if not follow and not terminal:
                return
            if time.monotonic() > deadline:
                return
            if not chunk:
                await asyncio.sleep(0.05)

    async def _route_healthz(self, request: Request) -> Response:
        return Response.json(
            200,
            {
                "status": "ok",
                "run_id": self.run_id,
                "uptime_seconds": time.time() - self.metrics.started,
                "workers": self.pool.workers,
                "backend": self.pool.backend,
                "queue_depth": self.pool.queue.qsize(),
                "jobs": self.store.counts(),
            },
        )

    async def _route_metrics(self, request: Request) -> Response:
        self.metrics.queue_depth(self.pool.queue.qsize())
        text = openmetrics_text(
            registry=self.metrics.snapshot(),
            experiment="serve",
            run_id=self.run_id,
        )
        return Response(
            status=200,
            body=text.encode("utf-8"),
            content_type="application/openmetrics-text; version=1.0.0; charset=utf-8",
        )


def _document_response(exc: DocumentError) -> Response:
    error = {"status": 400, "title": exc.title,
             "fields": [{"path": p, "message": m} for p, m in exc.fields]}
    return Response.json(400, {"error": error})


async def _serve_until_stopped(service: ReproService, announce: bool) -> None:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix loop or nested loop: rely on KeyboardInterrupt
    port = await service.start()
    if announce:
        print(
            f"repro serve: serving on http://{service.config.host}:{port}",
            file=sys.stderr, flush=True,
        )
    try:
        await stop.wait()
        if announce:
            print("repro serve: draining", file=sys.stderr, flush=True)
    finally:
        await service.shutdown()


def run_service(config: ServiceConfig, announce: bool = True) -> int:
    """Blocking entry point used by ``repro serve``."""
    service = ReproService(config)
    try:
        asyncio.run(_serve_until_stopped(service, announce))
    except KeyboardInterrupt:
        pass
    return 0


class ServiceHandle:
    """An in-process service on a background thread (tests, benchmarks).

    Usage::

        with ServiceHandle(ServiceConfig(data_dir=...)) as handle:
            ...  # HTTP against 127.0.0.1:handle.port

    ``stop()`` performs the same graceful drain as SIGTERM.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.port: Optional[int] = None
        self._started = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-serve", daemon=True
        )

    def start(self) -> "ServiceHandle":
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("service failed to start within 30s")
        if self._error is not None:
            raise RuntimeError(f"service failed to start: {self._error!r}")
        return self

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("service failed to drain in time")

    def __enter__(self) -> "ServiceHandle":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def base_url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:
            self._error = exc
            self._started.set()

    async def _amain(self) -> None:
        service = ReproService(self.config)
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self.port = await service.start()
        except BaseException as exc:
            self._error = exc
            self._started.set()
            return
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await service.shutdown()
