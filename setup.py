"""Setuptools shim for environments without the ``wheel`` package.

``pip install -e .`` needs PEP 660 wheel support; on offline boxes without
the ``wheel`` distribution, ``python setup.py develop`` provides the same
editable install through the legacy path.
"""
from setuptools import setup

setup()
