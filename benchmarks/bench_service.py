"""Load-generate the ``repro.serve`` job service and report latency.

The service satellite of the batch pipeline promises two things a batch
caller never has to think about: *throughput* (the HTTP layer and the
SQLite control plane must not become the bottleneck in front of the
solver fleet) and *latency* (submit → result must be dominated by the
actual experiment work, not by queueing or polling overhead). This
benchmark boots a :class:`~repro.serve.app.ServiceHandle` in-process on
an ephemeral port, drives it with ``--clients`` concurrent threads each
submitting ``--jobs`` copies of the documented reference workload, and
reports requests/sec plus p50/p99 submit→result latency.

Reference workload (pinned so rows are comparable across runs): one
MDET scenario over 6–8-subtask graphs, two system sizes, a single PURE
method — small enough that the service overhead is a visible fraction
of the row, large enough to exercise the full journal + result path.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick    # CI
    PYTHONPATH=src python benchmarks/bench_service.py \
        --quick --json bench-service.json                        # artifact
"""

from __future__ import annotations

import argparse
import http.client
import json
import shutil
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.app import ServiceConfig, ServiceHandle
from repro.serve.jobs import JobState

SEED = 20260807

#: The documented reference workload: near-instant trials so the row
#: measures service overhead + scheduling, not solver wall-clock.
REFERENCE_GRAPHS = {
    "n_subtasks_range": [6, 8],
    "depth_range": [2, 3],
    "degree_range": [1, 2],
}


def reference_job(name: str, seed: int) -> Dict[str, Any]:
    return {
        "format": "repro-job",
        "version": 1,
        "name": name,
        "workload": {
            "n_graphs": 2,
            "scenarios": ["MDET"],
            "seed": seed,
            "graph_config": dict(REFERENCE_GRAPHS),
        },
        "platform": {"system_sizes": [2, 3]},
        "methods": [{"label": "PURE", "metric": "PURE", "comm": "CCNE"}],
    }


# -- minimal blocking client (mirrors tests/serve_client.py, but the
# benchmark must not import from tests/) ------------------------------
def _request_json(
    port: int, method: str, path: str, payload: Optional[Dict[str, Any]] = None
) -> Tuple[int, Dict[str, Any]]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        data = response.read()
        return response.status, json.loads(data) if data else {}
    finally:
        conn.close()


def _run_one_job(port: int, document: Dict[str, Any]) -> float:
    """Submit → poll → fetch result; returns submit→result seconds."""
    started = time.perf_counter()
    status, body = _request_json(port, "POST", "/v1/jobs", document)
    if status != 202:
        raise RuntimeError(f"submit failed: {status} {body}")
    job_id = body["id"]
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        status, job = _request_json(port, "GET", f"/v1/jobs/{job_id}")
        if status != 200:
            raise RuntimeError(f"poll failed: {status} {job}")
        if job["state"] in JobState.TERMINAL:
            break
        time.sleep(0.005)
    else:
        raise RuntimeError(f"job {job_id} never reached a terminal state")
    if job["state"] != JobState.DONE:
        raise RuntimeError(f"job {job_id} finished {job['state']}: {job}")
    status, result = _request_json(port, "GET", f"/v1/jobs/{job_id}/result")
    if status != 200 or not result.get("records"):
        raise RuntimeError(f"result fetch failed: {status}")
    return time.perf_counter() - started


def _percentile(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile on an already-sorted sample."""
    if not sorted_values:
        return float("nan")
    rank = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def run_bench(clients: int, jobs_per_client: int, workers: int) -> Dict[str, Any]:
    data_dir = tempfile.mkdtemp(prefix="bench-serve-")
    latencies: List[float] = []
    errors: List[str] = []
    lock = threading.Lock()

    def client(index: int) -> None:
        for j in range(jobs_per_client):
            document = reference_job(
                f"bench-{index}-{j}", SEED + index * jobs_per_client + j
            )
            try:
                seconds = _run_one_job(handle.port, document)
            except Exception as exc:
                with lock:
                    errors.append(f"client {index} job {j}: {exc!r}")
                return
            with lock:
                latencies.append(seconds)

    config = ServiceConfig(data_dir=data_dir, workers=workers)
    try:
        with ServiceHandle(config) as handle:
            wall_start = time.perf_counter()
            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - wall_start
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)

    if errors:
        raise RuntimeError("bench clients failed:\n" + "\n".join(errors))

    latencies.sort()
    total_jobs = clients * jobs_per_client
    return {
        "clients": clients,
        "jobs_per_client": jobs_per_client,
        "workers": workers,
        "jobs": total_jobs,
        "wall_seconds": wall,
        "jobs_per_second": total_jobs / wall if wall else float("nan"),
        "p50_seconds": _percentile(latencies, 0.50),
        "p99_seconds": _percentile(latencies, 0.99),
        "max_seconds": latencies[-1],
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=None,
                        help="concurrent client threads (default 4; 2 with --quick)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="jobs per client (default 8; 3 with --quick)")
    parser.add_argument("--workers", type=int, default=2,
                        help="service worker count (default 2)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run: fewer clients and jobs")
    parser.add_argument("--json", metavar="OUT", default=None,
                        help="write the summary row as JSON to OUT")
    parser.add_argument("--max-p99-seconds", type=float, default=None,
                        help="exit non-zero if p99 submit→result exceeds this")
    args = parser.parse_args(argv)

    clients = args.clients if args.clients is not None else (2 if args.quick else 4)
    jobs = args.jobs if args.jobs is not None else (3 if args.quick else 8)

    row = run_bench(clients=clients, jobs_per_client=jobs, workers=args.workers)

    print(
        f"serve load: {row['jobs']} jobs, {clients} clients, "
        f"{args.workers} workers"
    )
    print(
        f"  throughput {row['jobs_per_second']:.2f} jobs/s over "
        f"{row['wall_seconds']:.2f}s wall"
    )
    print(
        f"  submit→result latency p50 {row['p50_seconds'] * 1000:.1f} ms, "
        f"p99 {row['p99_seconds'] * 1000:.1f} ms, "
        f"max {row['max_seconds'] * 1000:.1f} ms"
    )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(row, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")

    if args.max_p99_seconds is not None and row["p99_seconds"] > args.max_p99_seconds:
        print(
            f"FAIL: p99 {row['p99_seconds']:.3f}s exceeds gate "
            f"{args.max_p99_seconds:.3f}s",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
