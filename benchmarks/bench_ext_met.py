"""Section 8 extension: mean execution time sweep.

AST's metrics are ratios over the workload's own scale, so the lateness
*pattern* should be invariant up to scale when MET changes. Regenerates a
PURE vs ADAPT panel per MET ∈ {5, 20, 80} and asserts (a) ADAPT stays
competitive at the smallest size and (b) lateness scales roughly linearly
with MET (the workload, deadlines and messages all scale together).
"""

from _scale import run_once, n_graphs, system_sizes

from repro.feast import build_experiment, lateness_report, mean_max_lateness
from repro.feast.runner import run_experiment

GRAPHS = n_graphs(16)
SIZES = system_sizes("2,4,8,16")

TOLERANCE = 0.08


def bench_ext_met(benchmark):
    configs = build_experiment("ext-met", n_graphs=GRAPHS, system_sizes=SIZES)

    def run_all():
        return [run_experiment(config) for config in configs]

    results = run_once(benchmark, run_all)
    small = min(SIZES)
    print()
    by_met = {}
    for config, result in zip(configs, results):
        print(lateness_report(result))
        print()
        means = mean_max_lateness(result.records)
        pure = means[("MDET", "PURE", small)]
        adapt = means[("MDET", "ADAPT", small)]
        assert adapt <= pure + TOLERANCE * abs(pure), (config.name, pure, adapt)
        met = config.graph_config.mean_execution_time
        by_met[met] = means[("MDET", "ADAPT", max(SIZES))]

    # Scale invariance: lateness per unit of MET is roughly constant.
    normalized = [value / met for met, value in sorted(by_met.items())]
    assert max(normalized) - min(normalized) <= 0.35 * abs(
        sum(normalized) / len(normalized)
    ), normalized
