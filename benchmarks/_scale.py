"""Shared scaling knobs for the benchmark harness.

The paper runs 128 graphs per parameter combination over system sizes
2–16. At that scale a full figure takes minutes of pure-Python simulation,
so the benchmarks default to a reduced but statistically stable scale and
read environment variables for full-scale runs:

* ``REPRO_GRAPHS``  — graphs per combination (default 24; paper: 128)
* ``REPRO_SIZES``   — comma-separated system sizes (default ``2,3,4,8,16``;
  paper: ``2,3,4,6,8,10,12,14,16``)

Every benchmark prints the regenerated lateness panels (the figures' rows)
and asserts the paper's qualitative claims — orderings and crossovers, not
absolute values — which hold deterministically at the default scale because
every workload is seeded.
"""

from __future__ import annotations

import os
from typing import Tuple

#: Paper-scale values, for reference and for EXPERIMENTS.md runs.
PAPER_GRAPHS = 128
PAPER_SIZES: Tuple[int, ...] = (2, 3, 4, 6, 8, 10, 12, 14, 16)


def n_graphs(default: int = 24) -> int:
    return int(os.environ.get("REPRO_GRAPHS", str(default)))


def system_sizes(default: str = "2,3,4,8,16") -> Tuple[int, ...]:
    raw = os.environ.get("REPRO_SIZES", default)
    return tuple(int(part) for part in raw.split(",") if part)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a multi-second experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
