"""Extension: slicing techniques vs the related-work strategies (Section 2).

Compares PURE/ADAPT against Kao & Garcia-Molina's UD/ED/EQS/EQF and
Bettati & Liu's even division on the strategy-independent measure — mean
maximum *end-to-end* lateness against the application anchors. (Lateness
against each strategy's own distributed deadlines rewards lazy deadlines
like UD's and is only meaningful within a strategy.)

Asserted claims: (a) the classical equivalence — UD followed by the
deadline-consistency pass *is* ED (their series coincide exactly); (b) at
the paper's laxity level (OLR 1.5) every strategy keeps the workloads
end-to-end feasible at every size, i.e. the strategies differ in margin,
not in feasibility. The margins themselves are printed for the record
(EXPERIMENTS.md discusses them) — at this laxity level the spread across
strategies is small and ordering claims would be noise.
"""

from _scale import run_once, n_graphs, system_sizes

from repro.feast import build_experiment, end_to_end_panel
from repro.feast.aggregate import mean_end_to_end_lateness
from repro.feast.runner import run_experiment

GRAPHS = n_graphs(24)
SIZES = system_sizes("2,4,8,16")


def bench_ext_baselines(benchmark):
    (config,) = build_experiment(
        "ext-baselines", n_graphs=GRAPHS, system_sizes=SIZES
    )
    result = run_once(benchmark, run_experiment, config)
    print()
    for scenario in config.scenarios:
        print(end_to_end_panel(result, scenario))
        print()

    means = mean_end_to_end_lateness(result.records)
    for size in SIZES:
        # (a) UD + consistency == ED, exactly.
        assert means[("MDET", "UD", size)] == (
            means[("MDET", "ED", size)]
        ), size
        # (b) every strategy keeps the workload end-to-end feasible.
        for method in (m.label for m in config.methods):
            assert means[("MDET", method, size)] < 0, (method, size)
