"""Figure 5: the headline result — PURE vs THRES(Δ=1) vs ADAPT.

Regenerates the paper's main comparison and asserts its claims:

1. on small systems (parallelism not exploitable) the AST metrics beat
   PURE where execution-time variance gives them long subtasks to protect
   (MDET/HDET);
2. as the system grows, ADAPT tracks PURE (adaptive surplus fades) while
   THRES falls behind PURE (its fixed surplus keeps stealing slack);
3. ADAPT is never substantially worse than PURE anywhere in the sweep
   ("AST performs at least as good as BST in all other situations").
"""

from _scale import run_once, n_graphs, system_sizes

from repro.feast import build_experiment, lateness_report, mean_max_lateness
from repro.feast.runner import run_experiment

GRAPHS = n_graphs()
SIZES = system_sizes()

#: "Tracks PURE": relative gap allowed at saturation.
TRACKING_TOLERANCE = 0.05
#: "Never substantially worse": relative slack allowed anywhere.
SAFETY_TOLERANCE = 0.05
#: Sampling-noise allowance for the ordering claims (1 and 2b) at reduced
#: scale. The MDET margins are thin (~1% of the mean at paper scale):
#: at 24 graphs sampling noise can push them ~2.5% the wrong way, while at
#: the paper's 128 graphs both orderings hold strictly (verified with
#: REPRO_GRAPHS=128 REPRO_SIZES=2,3,4,6,8,10,12,14,16).
NOISE_TOLERANCE = 0.04


def bench_figure5(benchmark):
    (config,) = build_experiment(
        "figure5", n_graphs=GRAPHS, system_sizes=SIZES
    )
    result = run_once(benchmark, run_experiment, config)
    print()
    print(lateness_report(result))

    means = mean_max_lateness(result.records)
    small, large = min(SIZES), max(SIZES)

    # Claim 1: AST wins on the smallest system for the high-variance
    # scenarios (long subtasks exist to protect) — up to reduced-scale noise.
    for scenario in ("MDET", "HDET"):
        pure_small = means[(scenario, "PURE", small)]
        noise = NOISE_TOLERANCE * abs(pure_small)
        assert means[(scenario, "ADAPT", small)] <= pure_small + noise, scenario
        assert means[(scenario, "THRES", small)] <= pure_small + noise, scenario

    for scenario in config.scenarios:
        pure_large = means[(scenario, "PURE", large)]
        # Claim 2a: ADAPT tracks PURE at saturation.
        assert abs(means[(scenario, "ADAPT", large)] - pure_large) <= (
            TRACKING_TOLERANCE * abs(pure_large)
        ), scenario
        # Claim 2b: THRES does not beat PURE at saturation (it crossed
        # over) — again up to reduced-scale noise on a thin margin.
        assert means[(scenario, "THRES", large)] >= (
            pure_large - NOISE_TOLERANCE * abs(pure_large)
        ), scenario
        # Claim 3: ADAPT never substantially worse than PURE anywhere.
        for size in SIZES:
            pure = means[(scenario, "PURE", size)]
            assert means[(scenario, "ADAPT", size)] <= (
                pure + SAFETY_TOLERANCE * abs(pure)
            ), (scenario, size)
