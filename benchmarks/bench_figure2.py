"""Figure 2: BST metrics (PURE, NORM) under CCNE/CCAA estimation.

Regenerates the paper's three panels (LDET/MDET/HDET): mean maximum task
lateness vs system size for the four metric x estimation combinations, and
asserts the figure's qualitative claims:

1. lateness improves (falls) with system size and saturates;
2. CCNE outperforms CCAA for every metric and scenario;
3. PURE is the overall best metric — decisively so under HDET, where
   NORM's proportional slack starves the many short subtasks.
"""

from _scale import run_once, n_graphs, system_sizes

from repro.feast import build_experiment, lateness_report, mean_max_lateness
from repro.feast.runner import run_experiment

GRAPHS = n_graphs()
SIZES = system_sizes()


def bench_figure2(benchmark):
    (config,) = build_experiment(
        "figure2", n_graphs=GRAPHS, system_sizes=SIZES
    )
    result = run_once(benchmark, run_experiment, config)
    print()
    print(lateness_report(result))

    means = mean_max_lateness(result.records)
    small, large = min(SIZES), max(SIZES)

    for scenario in config.scenarios:
        for method in ("PURE/CCNE", "PURE/CCAA", "NORM/CCNE", "NORM/CCAA"):
            # Claim 1: more processors never hurt, and help at the start.
            assert means[(scenario, method, large)] <= (
                means[(scenario, method, small)]
            ), (scenario, method)
        for metric in ("PURE", "NORM"):
            # Claim 2: CCNE dominates CCAA at every size.
            for size in SIZES:
                assert means[(scenario, f"{metric}/CCNE", size)] <= (
                    means[(scenario, f"{metric}/CCAA", size)]
                ), (scenario, metric, size)

    # Claim 3: under HDET, NORM collapses relative to PURE at saturation.
    assert means[("HDET", "PURE/CCNE", large)] < (
        means[("HDET", "NORM/CCNE", large)]
    )
