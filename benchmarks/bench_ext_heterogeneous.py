"""Section 8 extension: heterogeneous processor speeds.

Regenerates PURE vs ADAPT panels for the uniform, mixed (1×/2×) and
one-fast (4×) speed profiles. Asserted claims:

* more capacity never hurts: at every size, the mixed profile (strictly
  faster platform) achieves lateness no worse than uniform;
* **measured limitation** (the gap the paper flags as "worthy of further
  investigation"): ADAPT's small-system deficit vs PURE grows monotonically
  with platform heterogeneity (uniform → mixed → one-fast). Its surplus
  ξ/N_proc counts processors, not capacity, so it over-inflates long
  subtasks on platforms whose speed exceeds their count;
* **the fix works**: the library's capacity-aware variant ADAPT-C
  (divisor = speed sum) coincides with ADAPT on the uniform platform and
  strictly recovers margin on both heterogeneous profiles at the smallest
  size.
"""

from _scale import run_once, n_graphs, system_sizes

from repro.feast import build_experiment, lateness_report, mean_max_lateness
from repro.feast.runner import run_experiment

GRAPHS = n_graphs(16)
SIZES = system_sizes("2,4,8,16")



def bench_ext_heterogeneous(benchmark):
    configs = build_experiment(
        "ext-heterogeneous", n_graphs=GRAPHS, system_sizes=SIZES
    )

    def run_all():
        return [run_experiment(config) for config in configs]

    results = run_once(benchmark, run_all)
    small = min(SIZES)
    adapt_by_profile = {}
    print()
    pure_small = {}
    adapt_small = {}
    adapt_c_small = {}
    for config, result in zip(configs, results):
        print(lateness_report(result))
        print()
        means = mean_max_lateness(result.records)
        profile = config.speed_profile
        pure_small[profile] = means[("MDET", "PURE", small)]
        adapt_small[profile] = means[("MDET", "ADAPT", small)]
        adapt_c_small[profile] = means[("MDET", "ADAPT-C", small)]
        adapt_by_profile[profile] = {
            size: means[("MDET", "ADAPT", size)] for size in SIZES
        }

    # ADAPT's deficit vs PURE at the smallest size, per profile; the
    # speed-blindness finding is its monotone growth with heterogeneity.
    deficit = {
        profile: adapt_small[profile] - pure_small[profile]
        for profile in pure_small
    }
    assert deficit["uniform"] <= deficit["mixed"] <= deficit["one-fast"], (
        deficit
    )
    # The capacity-aware variant: identical on uniform speeds, strictly
    # better than plain ADAPT on every heterogeneous profile.
    assert adapt_c_small["uniform"] == adapt_small["uniform"]
    for profile in ("mixed", "one-fast"):
        assert adapt_c_small[profile] < adapt_small[profile], (
            profile, adapt_small, adapt_c_small,
        )
    # And ADAPT never strays unboundedly: within 15% of PURE everywhere.
    for profile, pure in pure_small.items():
        assert adapt_small[profile] <= pure + 0.15 * abs(pure), (
            profile, pure_small, adapt_small,
        )

    for size in SIZES:
        assert adapt_by_profile["mixed"][size] <= (
            adapt_by_profile["uniform"][size] + 1e-6
        ), (size, adapt_by_profile)
