"""Algorithm cost: the Section 8 tractability claim.

The paper argues AST inherits BST's polynomial complexity (O(n³) for a
task of n subtasks). These micro-benchmarks time deadline distribution and
list scheduling on growing graphs so regressions in the hot paths surface,
and check super-cubic blow-ups are absent at repository scale.

Unlike the figure benchmarks these use pytest-benchmark's normal
multi-round calibration: single runs are milliseconds.
"""

import random

import pytest

from repro.core import ast, bst
from repro.graph import RandomGraphConfig, generate_task_graph
from repro.machine import System
from repro.sched import ListScheduler


def make_graph(n: int, seed: int = 0):
    config = RandomGraphConfig(
        n_subtasks_range=(n, n),
        depth_range=(max(3, n // 6), max(4, n // 5)),
    )
    return generate_task_graph(config, rng=random.Random(seed))


@pytest.mark.parametrize("n", [25, 50, 100, 200])
def bench_distribution_scaling(benchmark, n):
    graph = make_graph(n)
    distributor = ast("ADAPT")
    benchmark(distributor.distribute, graph, n_processors=8)


@pytest.mark.parametrize("comm", ["CCNE", "CCAA"])
def bench_distribution_by_estimator(benchmark, comm):
    graph = make_graph(50)
    distributor = bst("PURE", comm)
    benchmark(distributor.distribute, graph, n_processors=8)


@pytest.mark.parametrize("n_processors", [2, 8, 16])
def bench_scheduler_scaling(benchmark, n_processors):
    graph = make_graph(50)
    assignment = bst("PURE", "CCNE").distribute(graph)
    system = System(n_processors)
    scheduler = ListScheduler(system)
    benchmark(scheduler.schedule, graph, assignment)


def bench_generator(benchmark):
    benchmark(make_graph, 50, 1)


def bench_full_trial(benchmark):
    """One end-to-end trial, the unit the experiment harness repeats."""
    graph = make_graph(50)
    system = System(8)

    def trial():
        assignment = ast("ADAPT").distribute(graph, n_processors=8)
        return ListScheduler(system).schedule(graph, assignment)

    benchmark(trial)
