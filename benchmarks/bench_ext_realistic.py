"""Section 8's wished-for evaluation: realistic application benchmarks.

Runs PURE vs ADAPT on the three structured domain workloads — automotive
control (pinned I/O, moderate parallelism), radar pipeline (wide parallel
stages, heavy corner-turn communication) and video encoder (wavefront-
bounded parallelism) — across system sizes.

Asserted claims tie the benchmarks back to the paper's mechanism:

* on the radar pipeline, ADAPT beats PURE decisively in the mid-range
  (4–8 processors) — the regime where the chain's parallelism (ξ ≈ 5) is
  *partially* exploitable, exactly where the adaptive surplus is tuned to
  act; at 2 processors the surplus overshoots on this communication-heavy
  structure and PURE leads (recorded, not hidden);
* on the video encoder the wavefront caps parallelism, so by saturation
  the two metrics coincide within a few time units;
* every benchmark stays end-to-end feasible at the paper's laxity.
"""

from _scale import run_once, n_graphs, system_sizes

from repro.feast import build_experiment, lateness_report, mean_max_lateness
from repro.feast.aggregate import mean_end_to_end_lateness
from repro.feast.runner import run_experiment

GRAPHS = n_graphs(16)
SIZES = system_sizes("2,4,8,16")


def bench_ext_realistic(benchmark):
    configs = build_experiment(
        "ext-realistic", n_graphs=GRAPHS, system_sizes=SIZES
    )

    def run_all():
        return [run_experiment(config) for config in configs]

    results = run_once(benchmark, run_all)
    small = min(SIZES)
    by_workload = {}
    print()
    for config, result in zip(configs, results):
        print(lateness_report(result))
        print()
        means = mean_max_lateness(result.records)
        workload = config.name.split("ext-realistic-")[-1]
        by_workload[workload] = means
        e2e = mean_end_to_end_lateness(result.records)
        for size in SIZES:
            for method in ("PURE", "ADAPT"):
                assert e2e[("MDET", method, size)] < 0, (
                    workload, method, size,
                )

    radar = by_workload["radar"]
    mid_sizes = [s for s in SIZES if small < s < max(SIZES)]
    assert any(
        radar[("MDET", "ADAPT", s)] < radar[("MDET", "PURE", s)]
        for s in mid_sizes
    ), radar
    video = by_workload["video"]
    large = max(SIZES)
    gap = abs(
        video[("MDET", "ADAPT", large)] - video[("MDET", "PURE", large)]
    )
    assert gap <= 0.10 * abs(video[("MDET", "PURE", large)]), (gap, video)
