"""Run-time robustness: does the distributed margin survive execution?

The paper motivates minimizing maximum lateness as "how much additional
background workload the schedule can handle". This bench takes the static
story to run time with the discrete-event simulator:

* ``bench_runtime_jitter`` — execute the same annotated workloads with
  actual execution times at 100 %, 75 % and 50 % of WCET under the dynamic
  executive. Lateness must improve monotonically as executions shorten,
  for both PURE and ADAPT.
* ``bench_runtime_preemption`` — replay the static allocation under the
  preemptive per-processor executive. Preemption can only help the
  deadline-driven measure (a higher-priority task never waits behind a
  lower-priority one), so mean max lateness must be no worse than the
  non-preemptive replay.
"""

import statistics

from _scale import run_once, n_graphs

from repro.core import ast, bst
from repro.graph import RandomGraphConfig, generate_task_graphs
from repro.machine import System
from repro.sched import ListScheduler
from repro.sched.simulator import (
    JitterModel,
    allocation_of,
    simulate_dynamic,
    simulate_fixed,
)

GRAPHS = n_graphs(16)
N_PROCESSORS = 4


def _workloads():
    return generate_task_graphs(GRAPHS, RandomGraphConfig(), seed=77)


def bench_runtime_jitter(benchmark):
    graphs = _workloads()
    system = System(N_PROCESSORS)
    methods = {
        "PURE": bst("PURE", "CCNE"),
        "ADAPT": ast("ADAPT"),
    }

    def run():
        out = {}
        for label, distributor in methods.items():
            for factor in (1.0, 0.75, 0.5):
                jitter = JitterModel(low=factor, high=factor)
                values = []
                for graph in graphs:
                    assignment = distributor.distribute(
                        graph, n_processors=N_PROCESSORS
                    )
                    trace = simulate_dynamic(
                        graph, assignment, system, jitter=jitter
                    )
                    values.append(trace.max_lateness(assignment))
                out[(label, factor)] = statistics.mean(values)
        return out

    out = run_once(benchmark, run)
    print()
    print("mean max lateness under the dynamic executive:")
    for (label, factor), value in sorted(out.items()):
        print(f"  {label:<6} actual={factor:.0%}  {value:10.1f}")

    for label in methods:
        assert out[(label, 0.5)] <= out[(label, 0.75)] <= out[(label, 1.0)], (
            label, out,
        )


def bench_runtime_preemption(benchmark):
    graphs = _workloads()
    system = System(N_PROCESSORS)
    distributor = ast("ADAPT")

    def run():
        by_mode = {False: [], True: []}
        for graph in graphs:
            assignment = distributor.distribute(
                graph, n_processors=N_PROCESSORS
            )
            static = ListScheduler(system).schedule(graph, assignment)
            allocation = allocation_of(static)
            for preemptive in (False, True):
                trace = simulate_fixed(
                    graph, assignment, system, allocation,
                    preemptive=preemptive,
                )
                by_mode[preemptive].append(trace.max_lateness(assignment))
        return {
            mode: statistics.mean(values) for mode, values in by_mode.items()
        }

    out = run_once(benchmark, run)
    print()
    print("mean max lateness, fixed allocation replay:")
    print(f"  non-preemptive  {out[False]:10.1f}")
    print(f"  preemptive      {out[True]:10.1f}")
    assert out[True] <= out[False] + 1e-6, out
