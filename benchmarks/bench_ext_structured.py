"""Section 8 extension: structured task graphs.

Regenerates PURE vs ADAPT panels on in-tree, out-tree, fork-join and
pipeline graphs. Assertions follow the parallelism story: the highly
parallel structures (trees, fork-join) give ADAPT a clear small-system
win, while the pipeline (parallelism 1) leaves nothing for the adaptive
surplus to exploit — PURE and ADAPT coincide there up to noise.
"""

from _scale import run_once, n_graphs, system_sizes

from repro.feast import build_experiment, lateness_report, mean_max_lateness
from repro.feast.runner import run_experiment

GRAPHS = n_graphs(16)
SIZES = system_sizes("2,4,8,16")


def bench_ext_structured(benchmark):
    configs = build_experiment(
        "ext-structured", n_graphs=GRAPHS, system_sizes=SIZES
    )

    def run_all():
        return [run_experiment(config) for config in configs]

    results = run_once(benchmark, run_all)
    small = min(SIZES)
    gains = {}
    print()
    for config, result in zip(configs, results):
        print(lateness_report(result))
        print()
        means = mean_max_lateness(result.records)
        structure = config.name.split("ext-structured-")[-1]
        gains[structure] = (
            means[("MDET", "PURE", small)] - means[("MDET", "ADAPT", small)]
        )

    # The paper names these structures as future work and makes no claims;
    # we pin down what this substrate shows. The in-tree (massive fan-in,
    # parallelism far above the platform) is ADAPT's best case by a wide
    # margin, and the chain (parallelism 1) leaves the adaptive surplus
    # nothing to exploit, so PURE and ADAPT coincide there. Out-tree and
    # fork-join come out structure-dependent (printed above for the
    # record) — see EXPERIMENTS.md.
    assert gains["in-tree"] > 0, gains
    assert abs(gains["pipeline"]) <= 5.0, gains
    assert gains["in-tree"] == max(gains.values()), gains
