"""Time the deadline-distribution phase through the instrumentation layer.

This is the perf-trajectory probe the CI ``bench_runtime`` job runs on
every PR: it generates pinned-seed workloads, runs all four paper metrics
through :class:`~repro.core.slicer.DeadlineDistributor` across a system
size sweep — the exact shape of one experiment trial's distribute phase —
and reports wall-clock seconds per workload size via
:class:`~repro.feast.instrumentation.PhaseTimings`.

The workload mirrors the runner's reuse semantics (one distributor per
method, size-independent methods cached across the sweep), so the number
tracks what experiments actually pay.

When numpy is importable the same supported workload (PURE/THRES/ADAPT —
NORM routes through the kernel's scalar fallback and is excluded from
the speedup metric) is also timed through the vectorized batch kernel,
and ``--min-batch-speedup`` turns the batch-vs-scalar ratio into a CI
gate. Timings are best-of-N with the collector paused: per-run noise on
shared runners dwarfs the effect being measured otherwise.

Usage::

    PYTHONPATH=src python benchmarks/distribute_timing.py            # full
    PYTHONPATH=src python benchmarks/distribute_timing.py --quick    # CI
    PYTHONPATH=src python benchmarks/distribute_timing.py --json out.json
    PYTHONPATH=src python benchmarks/distribute_timing.py \
        --quick --min-batch-speedup 0.8                              # gate
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from typing import Dict, List, Optional

from repro.core import ast, bst
from repro.feast.instrumentation import Instrumentation
from repro.graph import RandomGraphConfig, generate_task_graph
import random

#: (label, distributor factory) — the four paper metrics with their
#: canonical estimators (BST: PURE/NORM, AST: THRES/ADAPT over CCNE).
METHODS = (
    ("PURE/CCNE", lambda: bst("PURE", "CCNE")),
    ("NORM/CCAA", lambda: bst("NORM", "CCAA")),
    ("THRES", lambda: ast("THRES")),
    ("ADAPT", lambda: ast("ADAPT")),
)

SIZES_FULL = (16, 32, 64, 128)
SIZES_QUICK = (16, 64)
SEED = 20260806


def _graphs(n_subtasks: int, count: int) -> List:
    config = RandomGraphConfig(
        n_subtasks_range=(n_subtasks, n_subtasks),
        depth_range=(max(2, n_subtasks // 8), max(3, n_subtasks // 6)),
    )
    return [
        generate_task_graph(config, rng=random.Random(SEED + i))
        for i in range(count)
    ]


def time_distribute(
    n_subtasks: int, n_graphs: int, system_sizes=(2, 4, 8, 16), repeats: int = 1
) -> Dict[str, float]:
    """Distribute-phase seconds for one workload size (best of ``repeats``)."""
    graphs = _graphs(n_subtasks, n_graphs)
    best = None
    for _ in range(repeats):
        inst = Instrumentation()
        for label, build in METHODS:
            distributor = build()
            size_dependent = label == "ADAPT"
            for graph in graphs:
                cached = None
                for n_processors in system_sizes:
                    if not size_dependent and cached is not None:
                        continue
                    with inst.phase("distribute"):
                        assignment = distributor.distribute(
                            graph, n_processors=n_processors
                        )
                    if not size_dependent:
                        cached = assignment
        seconds = inst.timings.distribute
        best = seconds if best is None else min(best, seconds)
    trials = len(METHODS) * n_graphs
    return {
        "n_subtasks": n_subtasks,
        "n_graphs": n_graphs,
        "distribute_seconds": best,
        "seconds_per_graph_method": best / trials,
    }


#: Methods the batch kernel evaluates vectorized (NORM falls back).
BATCH_METHODS = tuple(m for m in METHODS if m[0] != "NORM/CCAA")


def time_batch_vs_scalar(
    n_subtasks: int,
    n_graphs: int,
    system_sizes=(2, 4, 8, 16),
    repeats: int = 3,
) -> Optional[Dict[str, float]]:
    """Best-of-``repeats`` seconds for the batch-supported workload,
    scalar loop vs one :func:`distribute_many` call; ``None`` if numpy
    is unavailable."""
    try:
        from repro.core.batch import DistributeRequest, distribute_many
    except ImportError:
        return None

    graphs = _graphs(n_subtasks, n_graphs)
    requests = []
    for label, build in BATCH_METHODS:
        distributor = build()
        if label == "ADAPT":
            for n_processors in system_sizes:
                for graph in graphs:
                    requests.append(DistributeRequest(
                        graph=graph,
                        distributor=distributor,
                        n_processors=n_processors,
                    ))
        else:
            for graph in graphs:
                requests.append(
                    DistributeRequest(graph=graph, distributor=distributor)
                )

    scalar_best = batch_best = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            began = time.perf_counter()
            for request in requests:
                kwargs = {}
                if request.n_processors is not None:
                    kwargs["n_processors"] = request.n_processors
                request.distributor.distribute(request.graph, **kwargs)
            seconds = time.perf_counter() - began
            scalar_best = (
                seconds if scalar_best is None else min(scalar_best, seconds)
            )

            began = time.perf_counter()
            distribute_many(requests)
            seconds = time.perf_counter() - began
            batch_best = (
                seconds if batch_best is None else min(batch_best, seconds)
            )
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "n_subtasks": n_subtasks,
        "n_requests": len(requests),
        "scalar_seconds": scalar_best,
        "batch_seconds": batch_best,
        "batch_speedup": scalar_best / batch_best,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: fewer sizes and graphs (seconds, not minutes)",
    )
    parser.add_argument("--json", default=None, help="write timings as JSON")
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timing repeats per size (default: 3, quick: 1)",
    )
    parser.add_argument(
        "--min-batch-speedup", type=float, default=None,
        help="fail (exit 1) if the batch kernel's speedup over the "
        "scalar loop drops below this ratio at any size (0.8 catches a "
        ">20%% batch regression while tolerating runner noise)",
    )
    args = parser.parse_args(argv)

    sizes = SIZES_QUICK if args.quick else SIZES_FULL
    n_graphs = 4 if args.quick else 8
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)

    rows = []
    began = time.perf_counter()
    for n_subtasks in sizes:
        row = time_distribute(n_subtasks, n_graphs, repeats=repeats)
        rows.append(row)
        print(
            f"n_subtasks={n_subtasks:<4} graphs={n_graphs} "
            f"distribute={row['distribute_seconds']:8.3f}s "
            f"({row['seconds_per_graph_method'] * 1e3:8.2f} ms/graph/method)"
        )
    batch_rows = []
    batch_repeats = max(repeats, 3)  # ratios need noise suppression
    for n_subtasks in sizes:
        row = time_batch_vs_scalar(n_subtasks, n_graphs, repeats=batch_repeats)
        if row is None:
            print("batch kernel unavailable (no numpy); skipping batch rows")
            break
        batch_rows.append(row)
        print(
            f"n_subtasks={n_subtasks:<4} requests={row['n_requests']:<3} "
            f"scalar={row['scalar_seconds']:8.3f}s "
            f"batch={row['batch_seconds']:8.3f}s "
            f"speedup={row['batch_speedup']:5.2f}x"
        )
    elapsed = time.perf_counter() - began
    print(f"total {elapsed:.1f}s")

    if args.json:
        payload = {
            "benchmark": "distribute_phase",
            "seed": SEED,
            "methods": [label for label, _ in METHODS],
            "rows": rows,
            "batch_methods": [label for label, _ in BATCH_METHODS],
            "batch_rows": batch_rows,
        }
        with open(args.json, "w") as fp:
            json.dump(payload, fp, indent=2)
        print(f"wrote {args.json}")

    if args.min_batch_speedup is not None:
        if not batch_rows:
            print("FAIL: --min-batch-speedup set but batch rows unavailable")
            return 1
        slowest = min(batch_rows, key=lambda r: r["batch_speedup"])
        if slowest["batch_speedup"] < args.min_batch_speedup:
            print(
                f"FAIL: batch speedup {slowest['batch_speedup']:.2f}x at "
                f"n_subtasks={slowest['n_subtasks']} is below the "
                f"{args.min_batch_speedup:.2f}x gate"
            )
            return 1
        print(
            f"batch gate ok: worst speedup {slowest['batch_speedup']:.2f}x "
            f">= {args.min_batch_speedup:.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
