"""Section 8 extensions: scheduling policies and locality strictness.

Two sweeps in one module (they share scale):

* ``bench_ext_policy`` — PURE vs ADAPT under EDF, LLF, ERF and LPT
  ready-list policies. The deadline-aware policies must beat the
  deadline-oblivious LPT on the deadline-lateness measure — that is what
  makes distributed deadlines useful to a scheduler at all. EDF and ERF
  win at every size; LLF's myopic laxity ordering only pays off where
  contention is high (the smallest system) — at saturation the few ready
  tasks make its ordering near-arbitrary and it can trail LPT — so the
  LLF claim is asserted at the smallest size.
* ``bench_ext_locality`` — PURE vs ADAPT as the strictly-pinned fraction
  grows from 0 % (the paper's relaxed setting) to 100 % (the BST setting).
  Pins constrain the scheduler, so lateness must degrade monotonically-ish
  from the relaxed end to the strict end.
"""

from _scale import run_once, n_graphs, system_sizes

from repro.feast import build_experiment, lateness_report, mean_max_lateness
from repro.feast.runner import run_experiment

GRAPHS = n_graphs(16)
SIZES = system_sizes("2,4,8,16")


def bench_ext_policy(benchmark):
    configs = build_experiment("ext-policy", n_graphs=GRAPHS, system_sizes=SIZES)

    def run_all():
        return [run_experiment(config) for config in configs]

    results = run_once(benchmark, run_all)
    small, large = min(SIZES), max(SIZES)
    at_small = {}
    at_large = {}
    print()
    for config, result in zip(configs, results):
        print(lateness_report(result))
        print()
        means = mean_max_lateness(result.records)
        at_small[config.policy] = means[("MDET", "ADAPT", small)]
        at_large[config.policy] = means[("MDET", "ADAPT", large)]

    # Deadline-driven dispatch beats LPT outright at every size.
    assert at_large["EDF"] <= at_large["LPT"] + 1e-6, at_large
    assert at_small["EDF"] <= at_small["LPT"] + 1e-6, at_small
    # LLF's edge lives where contention is high (see module docstring).
    assert at_small["LLF"] <= at_small["LPT"] + 1e-6, at_small


def bench_ext_locality(benchmark):
    configs = build_experiment(
        "ext-locality", n_graphs=GRAPHS, system_sizes=SIZES
    )

    def run_all():
        return [run_experiment(config) for config in configs]

    results = run_once(benchmark, run_all)
    large = max(SIZES)
    by_fraction = {}
    print()
    for config, result in zip(configs, results):
        print(lateness_report(result))
        print()
        means = mean_max_lateness(result.records)
        fraction = int(config.name.rsplit("-", 1)[-1]) / 100.0
        by_fraction[fraction] = means[("MDET", "ADAPT", large)]

    # Freedom helps: fully relaxed placement beats fully strict placement.
    assert by_fraction[0.0] <= by_fraction[1.0] + 1e-6, by_fraction
