"""THRES surplus tuning across workload shapes (paper Sections 7–8).

The paper concludes that "a universally best value of Δ is nigh impossible
to find" and that the best surplus "is very application-dependent and must
in the worst case be chosen specifically for each system". This bench
makes that claim operational with the sweep API: grid Δ ∈ {0.5, 1, 2, 4}
across three workload shapes (wide / paper-shaped / deep graphs, i.e.
decreasing parallelism) under HDET, and identify the per-shape winner.

Asserted:

* at saturation (largest size) the smallest surplus wins on every shape —
  extra surplus only steals slack once contention is gone;
* at the smallest size the winning Δ *differs across shapes* (at least
  two distinct winners), the no-universal-Δ claim;
* the winning Δ at the smallest size is monotone in graph parallelism:
  wide graphs want at least as much surplus as deep graphs.

Uses a fixed trial count (not REPRO_GRAPHS): the assertions identify
argmins, which need the calibrated scale to stay deterministic. 48 graphs
is that scale — at 16 the saturated paper-shape panel is flat (all four
surpluses within ~1% of each other) and its argmin is sampling noise.
"""

from _scale import run_once, system_sizes

from repro.feast import ExperimentConfig, MethodSpec, run_experiments
from repro.feast.aggregate import mean_max_lateness
from repro.feast.tables import lateness_report
from repro.graph.generator import RandomGraphConfig

SIZES = system_sizes("2,4,8,16")
N_GRAPHS = 48
SURPLUSES = (0.5, 1.0, 2.0, 4.0)

#: (shape name, depth range, degree range), in decreasing parallelism.
SHAPES = (
    ("wide", (4, 6), (1, 2)),
    ("paper", (8, 12), (1, 3)),
    ("deep", (16, 20), (1, 3)),
)


def _config(shape_name, depth_range, degree_range):
    return ExperimentConfig(
        name=f"thres-tuning-{shape_name}",
        description=f"THRES surplus grid on {shape_name} graphs",
        methods=tuple(
            MethodSpec(
                label=f"d{surplus:g}",
                metric="THRES",
                surplus=surplus,
                threshold_factor=1.25,
            )
            for surplus in SURPLUSES
        ),
        graph_config=RandomGraphConfig(
            depth_range=depth_range, degree_range=degree_range
        ),
        scenarios=("HDET",),
        n_graphs=N_GRAPHS,
        system_sizes=SIZES,
        seed=12,
    )


def bench_thres_tuning(benchmark):
    configs = [_config(*shape) for shape in SHAPES]
    results = run_once(benchmark, run_experiments, configs)

    labels = [f"d{s:g}" for s in SURPLUSES]
    small, large = min(SIZES), max(SIZES)
    winner_small = {}
    winner_large = {}
    print()
    for (shape_name, *_), result in zip(SHAPES, results):
        print(lateness_report(result))
        print()
        means = mean_max_lateness(result.records)
        winner_small[shape_name] = min(
            labels, key=lambda l: means[("HDET", l, small)]
        )
        winner_large[shape_name] = min(
            labels, key=lambda l: means[("HDET", l, large)]
        )

    print(f"winning surplus at {small} procs: {winner_small}")
    print(f"winning surplus at {large} procs: {winner_large}")

    # Saturation always wants the smallest surplus.
    assert all(w == labels[0] for w in winner_large.values()), winner_large
    # No universal Δ: the small-system winner is shape-dependent.
    assert len(set(winner_small.values())) >= 2, winner_small
    # Monotone in parallelism: wide wants >= surplus than deep.
    order = {label: index for index, label in enumerate(labels)}
    assert order[winner_small["wide"]] >= order[winner_small["deep"]], (
        winner_small
    )
