"""Clamping ablation: does the reproduction's window-clamping choice matter?

DESIGN.md §5 documents one deviation the paper forces on us: when a sliced
window conflicts with anchors a node inherited from earlier slices, we
clamp (preserving precedence-consistent windows). This bench quantifies
the decision:

* **in the paper's regime** (OLR 1.5) clamping is a near-no-op — almost
  every paired trial produces *identical* lateness under the clamped and
  raw variants (the rare exceptions are single graphs whose windows do
  conflict, shifting the series mean by well under 1%), so the
  unspecified detail cannot have affected the paper's results;
* **in the over-constrained regime** (tight path-based deadlines) the
  variants genuinely diverge — windows conflict and the resolution rule
  matters — which is printed for the record (differences are a few time
  units against lateness in the hundreds; no ordering claim is stable
  there, and all schedules are infeasible anyway).
"""

from dataclasses import replace

from _scale import run_once, n_graphs, system_sizes

from repro.feast import build_experiment, lateness_report, mean_max_lateness
from repro.feast.runner import run_experiment
from repro.graph.generator import RandomGraphConfig

GRAPHS = n_graphs(16)
SIZES = system_sizes("2,4,8,16")

#: Paired trials allowed to differ in the paper regime (a window conflict
#: is possible but rare there — observed on ~1 graph in 16).
MAX_DIVERGENT_FRACTION = 0.05
#: Allowed relative shift of any (metric, size) series mean.
MAX_MEAN_SHIFT = 0.01


def bench_ablation_clamp(benchmark):
    (paper_cfg,) = build_experiment(
        "ablation-clamp", n_graphs=GRAPHS, system_sizes=SIZES
    )
    tight_cfg = replace(
        paper_cfg,
        name="ablation-clamp-tight",
        graph_config=RandomGraphConfig(
            overall_laxity_ratio=0.4, olr_basis="path-workload"
        ),
    )

    def run_both():
        return run_experiment(paper_cfg), run_experiment(tight_cfg)

    paper, tight = run_once(benchmark, run_both)
    print()
    print(lateness_report(paper))
    print()
    print(lateness_report(tight))

    # Near-no-op in the paper regime: per paired trial, clamped == raw for
    # all but a rare conflicting graph, and no series mean moves by more
    # than MAX_MEAN_SHIFT relative.
    by_trial = {
        (r.method, r.n_processors, r.graph_index): r.max_lateness
        for r in paper.records
    }
    paired = divergent = 0
    for metric in ("PURE", "ADAPT"):
        for size in SIZES:
            for index in range(GRAPHS):
                clamped = by_trial[(f"{metric}/clamped", size, index)]
                raw = by_trial[(f"{metric}/raw", size, index)]
                paired += 1
                divergent += clamped != raw

    print(f"paper regime: {divergent}/{paired} paired trials diverge")
    assert divergent <= MAX_DIVERGENT_FRACTION * paired, (divergent, paired)

    means = mean_max_lateness(paper.records)
    for metric in ("PURE", "ADAPT"):
        for size in SIZES:
            clamped = means[("MDET", f"{metric}/clamped", size)]
            raw = means[("MDET", f"{metric}/raw", size)]
            assert abs(clamped - raw) <= MAX_MEAN_SHIFT * abs(raw), (
                metric, size, clamped, raw,
            )

    tight_means = mean_max_lateness(tight.records)
    diverged = any(
        tight_means[("MDET", f"{metric}/clamped", size)]
        != tight_means[("MDET", f"{metric}/raw", size)]
        for metric in ("PURE", "ADAPT")
        for size in SIZES
    )
    assert diverged, "clamping should matter once windows conflict"
