"""Clamping ablation: does the reproduction's window-clamping choice matter?

DESIGN.md §5 documents one deviation the paper forces on us: when a sliced
window conflicts with anchors a node inherited from earlier slices, we
clamp (preserving precedence-consistent windows). This bench quantifies
the decision:

* **in the paper's regime** (OLR 1.5) clamping is a no-op — the clamped
  and raw variants produce *identical* lateness series for both PURE and
  ADAPT, so the unspecified detail cannot have affected the paper's
  results (asserted exactly);
* **in the over-constrained regime** (tight path-based deadlines) the
  variants genuinely diverge — windows conflict and the resolution rule
  matters — which is printed for the record (differences are a few time
  units against lateness in the hundreds; no ordering claim is stable
  there, and all schedules are infeasible anyway).
"""

from dataclasses import replace

from _scale import run_once, n_graphs, system_sizes

from repro.feast import build_experiment, lateness_report, mean_max_lateness
from repro.feast.runner import run_experiment
from repro.graph.generator import RandomGraphConfig

GRAPHS = n_graphs(16)
SIZES = system_sizes("2,4,8,16")


def bench_ablation_clamp(benchmark):
    (paper_cfg,) = build_experiment(
        "ablation-clamp", n_graphs=GRAPHS, system_sizes=SIZES
    )
    tight_cfg = replace(
        paper_cfg,
        name="ablation-clamp-tight",
        graph_config=RandomGraphConfig(
            overall_laxity_ratio=0.4, olr_basis="path-workload"
        ),
    )

    def run_both():
        return run_experiment(paper_cfg), run_experiment(tight_cfg)

    paper, tight = run_once(benchmark, run_both)
    print()
    print(lateness_report(paper))
    print()
    print(lateness_report(tight))

    means = mean_max_lateness(paper.records)
    for metric in ("PURE", "ADAPT"):
        for size in SIZES:
            clamped = means[("MDET", f"{metric}/clamped", size)]
            raw = means[("MDET", f"{metric}/raw", size)]
            assert clamped == raw, (metric, size, clamped, raw)

    tight_means = mean_max_lateness(tight.records)
    diverged = any(
        tight_means[("MDET", f"{metric}/clamped", size)]
        != tight_means[("MDET", f"{metric}/raw", size)]
        for metric in ("PURE", "ADAPT")
        for size in SIZES
    )
    assert diverged, "clamping should matter once windows conflict"
