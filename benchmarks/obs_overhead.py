"""Measure the wall-clock overhead of live observability.

The live telemetry layer (status stream + sampler thread + OpenMetrics
textfile rewrites) promises to *observe* the engine, not slow it down.
This benchmark runs the same pinned-seed experiment twice — bare, and
with a :class:`~repro.obs.StatusStream`, a fast-ticking
:class:`~repro.obs.StatusSampler`, full tracing instrumentation, and
``--metrics-out``-style exports all enabled — and reports the relative
wall-clock overhead. ``--max-overhead-pct`` turns it into the CI gate
the ``bench_runtime`` job enforces (ISSUE 9: ≤5%).

Timings are best-of-N per variant with the collector paused, because a
single run on a shared CI runner measures the neighbor's workload as
much as ours. Interleaving the variants (bare, live, bare, live, ...)
additionally decorrelates slow machine phases from one variant.

Usage::

    PYTHONPATH=src python benchmarks/obs_overhead.py             # full
    PYTHONPATH=src python benchmarks/obs_overhead.py --quick     # CI
    PYTHONPATH=src python benchmarks/obs_overhead.py \
        --quick --max-overhead-pct 5 --json obs-overhead.json    # gate
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Dict

from repro.feast.config import ExperimentConfig, MethodSpec
from repro.feast.instrumentation import Instrumentation
from repro.feast.runner import run_experiment
from repro.graph import RandomGraphConfig
from repro.obs import StatusSampler, StatusStream, Telemetry, activate_status

SEED = 20260807


def _config(n_graphs: int) -> ExperimentConfig:
    return ExperimentConfig(
        name="obs-overhead",
        description="live-telemetry overhead probe",
        methods=(
            MethodSpec(label="PURE", metric="PURE", comm="CCNE"),
            MethodSpec(label="ADAPT", metric="ADAPT"),
        ),
        # Paper-realistic graph sizes: per-trial work is milliseconds,
        # so the per-trial cost of the observers (span open/close, a
        # couple of counter bumps, one publish per chunk) is measured
        # as the small relative overhead it is in production, not
        # amplified by artificially tiny trials.
        graph_config=RandomGraphConfig(n_subtasks_range=(30, 34)),
        scenarios=("LDET", "HDET"),
        n_graphs=n_graphs,
        seed=SEED,
        system_sizes=(2, 4),
        speed_profile="mixed",
    )


def run_bare(config: ExperimentConfig, jobs: int) -> float:
    began = time.perf_counter()
    run_experiment(config, jobs=jobs)
    return time.perf_counter() - began


def run_live(config: ExperimentConfig, jobs: int, workdir: str,
             interval: float) -> float:
    """One run with every observer attached: tracing instrumentation,
    status stream, sampler thread, and OpenMetrics textfile export."""
    inst = Instrumentation(telemetry=Telemetry())
    stream = StatusStream(
        os.path.join(workdir, "run.status.jsonl"), config.name, "bench"
    )
    sampler = StatusSampler(
        stream, inst, interval=interval,
        metrics_out=os.path.join(workdir, "metrics.prom"),
    )
    began = time.perf_counter()
    with activate_status(stream), sampler:
        run_experiment(config, jobs=jobs, instrumentation=inst)
    elapsed = time.perf_counter() - began
    stream.close()
    return elapsed


def time_overhead(
    n_graphs: int, jobs: int, repeats: int, interval: float
) -> Dict[str, float]:
    """Best-of-``repeats`` bare vs fully-observed wall-clock seconds."""
    config = _config(n_graphs)
    run_bare(config, jobs)  # warm imports/caches outside the timings
    bare_best = live_best = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            seconds = run_bare(config, jobs)
            bare_best = (
                seconds if bare_best is None else min(bare_best, seconds)
            )
            workdir = tempfile.mkdtemp(prefix="obs-overhead-")
            try:
                seconds = run_live(config, jobs, workdir, interval)
            finally:
                shutil.rmtree(workdir, ignore_errors=True)
            live_best = (
                seconds if live_best is None else min(live_best, seconds)
            )
    finally:
        if gc_was_enabled:
            gc.enable()
    return {
        "n_graphs": n_graphs,
        "jobs": jobs,
        "bare_seconds": bare_best,
        "live_seconds": live_best,
        "overhead_pct": (live_best - bare_best) / bare_best * 100.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI mode: smaller workload, fewer repeats",
    )
    parser.add_argument("--json", default=None, help="write timings as JSON")
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="paired repeats per variant (default: 5, quick: 3)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the measured runs (default: serial — "
        "the tightest bound on per-trial overhead)",
    )
    parser.add_argument(
        "--interval", type=float, default=0.2,
        help="sampler tick seconds; deliberately 5x faster than the 1s "
        "production default (default: 0.2). The sampler ticks on a "
        "thread, so each tick's snapshot + textfile rewrite steals GIL "
        "time from the engine — faster ticks measure a worse case.",
    )
    parser.add_argument(
        "--max-overhead-pct", type=float, default=None,
        help="fail (exit 1) if live observability costs more than this "
        "percent of bare wall-clock",
    )
    args = parser.parse_args(argv)

    # The workload must be long enough that the sampler's fixed costs
    # (thread start/stop, one final tick) amortize to noise; these
    # sizes put the bare run in the 1.5-3.5s range.
    n_graphs = 150 if args.quick else 300
    repeats = args.repeats if args.repeats is not None else (
        3 if args.quick else 5
    )
    began = time.perf_counter()
    row = time_overhead(n_graphs, args.jobs, repeats, args.interval)
    print(
        f"graphs={row['n_graphs']} jobs={row['jobs']} "
        f"bare={row['bare_seconds']:.3f}s live={row['live_seconds']:.3f}s "
        f"overhead={row['overhead_pct']:+.2f}%"
    )
    print(f"total {time.perf_counter() - began:.1f}s")

    if args.json:
        payload = {
            "benchmark": "obs_overhead",
            "seed": SEED,
            "sampler_interval": args.interval,
            "row": row,
        }
        with open(args.json, "w") as fp:
            json.dump(payload, fp, indent=2)
        print(f"wrote {args.json}")

    if args.max_overhead_pct is not None:
        if row["overhead_pct"] > args.max_overhead_pct:
            print(
                f"FAIL: live observability overhead "
                f"{row['overhead_pct']:+.2f}% exceeds the "
                f"{args.max_overhead_pct:g}% gate"
            )
            return 1
        print(
            f"overhead gate ok: {row['overhead_pct']:+.2f}% <= "
            f"{args.max_overhead_pct:g}%"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
