"""Section 8 extension: communication-to-computation ratio sweep.

The paper reports (full data in TR-281) that AST scales well across CCR
values. Regenerates a PURE vs ADAPT panel per CCR ∈ {0.1, 0.5, 1, 2, 4}
and asserts that ADAPT stays at least competitive with PURE at the
smallest system size for every ratio. "Competitive" carries a tolerance:
CCR=2 is the sweep's worst corner, where communication subtasks dilute
the surplus's value and ADAPT genuinely trails PURE by a modest margin
(~7% of the mean at 64 graphs); reduced-scale sampling noise can widen
that to ~12%, which the tolerance must cover.
"""

from _scale import run_once, n_graphs, system_sizes

from repro.feast import build_experiment, lateness_report, mean_max_lateness
from repro.feast.runner import run_experiment

GRAPHS = n_graphs(16)
SIZES = system_sizes("2,4,8,16")

#: Allowed relative slack for "at least competitive" (see module docstring
#: for the CCR=2 corner that sets it).
TOLERANCE = 0.15


def bench_ext_ccr(benchmark):
    configs = build_experiment("ext-ccr", n_graphs=GRAPHS, system_sizes=SIZES)

    def run_all():
        return [run_experiment(config) for config in configs]

    results = run_once(benchmark, run_all)
    small = min(SIZES)
    print()
    for config, result in zip(configs, results):
        print(lateness_report(result))
        print()
        means = mean_max_lateness(result.records)
        pure = means[("MDET", "PURE", small)]
        adapt = means[("MDET", "ADAPT", small)]
        assert adapt <= pure + TOLERANCE * abs(pure), (config.name, pure, adapt)
