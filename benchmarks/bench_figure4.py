"""Figure 4: THRES execution-time threshold ∈ {0.75, 1.0, 1.25} × MET.

Regenerates the threshold panels and asserts the paper's claim that the
threshold choice is *not critical*: varying it ±25 % around MET moves the
mean maximum lateness only mildly (the paper reports within ±5 %; we allow
a loose band since the substrate differs).
"""

from _scale import run_once, n_graphs, system_sizes

from repro.feast import build_experiment, lateness_report, mean_max_lateness
from repro.feast.runner import run_experiment

GRAPHS = n_graphs()
SIZES = system_sizes()

#: Generous bound on the relative spread across thresholds (paper: ~5 %).
MAX_RELATIVE_SPREAD = 0.25


def bench_figure4(benchmark):
    (config,) = build_experiment(
        "figure4", n_graphs=GRAPHS, system_sizes=SIZES
    )
    result = run_once(benchmark, run_experiment, config)
    print()
    print(lateness_report(result))

    means = mean_max_lateness(result.records)
    labels = [m.label for m in config.methods]

    for scenario in config.scenarios:
        for size in SIZES:
            values = [means[(scenario, label, size)] for label in labels]
            center = sum(values) / len(values)
            spread = max(values) - min(values)
            assert spread <= MAX_RELATIVE_SPREAD * abs(center), (
                scenario, size, values,
            )
