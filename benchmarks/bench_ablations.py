"""Reproduction ablations for the documented deviations (DESIGN.md §5).

* ``bench_ablation_olr`` — OLR basis (graph-workload vs path-workload) and
  tightness. Quantifies how much the ambiguous OLR sentence matters: the
  graph-workload reading keeps schedules feasible (negative lateness);
  the path-workload reading under CCR=1 over-constrains them. Tighter OLR
  always costs margin under either reading.
* ``bench_ablation_bus`` — contended shared bus vs contention-free network:
  the bus can only be worse, and the gap is the price of serialization.
* ``bench_ablation_release`` — greedy packing vs time-triggered dispatch of
  the distributed release times: greedy dominates on the lateness measure
  (waiting for a window can only delay completions), which is why it is
  the default run-time model in this reproduction.
"""

from _scale import run_once, n_graphs, system_sizes

from repro.feast import build_experiment, lateness_report, mean_max_lateness
from repro.feast.runner import run_experiment

GRAPHS = n_graphs(16)
SIZES = system_sizes("2,4,8,16")


def _run_all(benchmark, name):
    configs = build_experiment(name, n_graphs=GRAPHS, system_sizes=SIZES)

    def run_all():
        return [run_experiment(config) for config in configs]

    results = run_once(benchmark, run_all)
    print()
    for result in results:
        print(lateness_report(result))
        print()
    return configs, results


def bench_ablation_olr(benchmark):
    configs, results = _run_all(benchmark, "ablation-olr")
    by_key = {}
    for config, result in zip(configs, results):
        means = mean_max_lateness(result.records)
        basis = config.graph_config.olr_basis
        olr = config.graph_config.overall_laxity_ratio
        by_key[(basis, olr)] = means[("MDET", "ADAPT", max(SIZES))]

    for basis in ("graph-workload", "path-workload"):
        # Looser deadlines -> more margin, under either reading.
        assert by_key[(basis, 2.0)] <= by_key[(basis, 1.1)] + 1e-6, by_key
    # The literal (graph-workload) reading keeps the paper's regime:
    # schedulable with margin at the default OLR 1.5.
    assert by_key[("graph-workload", 1.5)] < 0, by_key


def bench_ablation_bus(benchmark):
    configs, results = _run_all(benchmark, "ablation-bus")
    by_topology = {}
    for config, result in zip(configs, results):
        means = mean_max_lateness(result.records)
        by_topology[config.topology] = means[("MDET", "ADAPT", max(SIZES))]
    # Removing contention can only help.
    assert by_topology["ideal"] <= by_topology["bus"] + 1e-6, by_topology


def bench_ablation_release(benchmark):
    configs, results = _run_all(benchmark, "ablation-release")
    by_mode = {}
    for config, result in zip(configs, results):
        means = mean_max_lateness(result.records)
        by_mode[config.respect_release_times] = means[
            ("MDET", "ADAPT", max(SIZES))
        ]
    # Greedy packing dominates time-triggered dispatch on lateness.
    assert by_mode[False] <= by_mode[True] + 1e-6, by_mode
