"""Figure 3: THRES surplus factor Δ ∈ {1, 2, 4}.

Regenerates the surplus-factor panels and asserts the paper's claim that a
large surplus is detrimental once parallelism is exploitable: at the
largest system size Δ = 4 is the worst choice, while at the smallest size
the larger surpluses are competitive (the paper's "a best value of Δ is
nigh impossible to find" trade-off).
"""

from _scale import run_once, n_graphs, system_sizes

from repro.feast import build_experiment, lateness_report, mean_max_lateness
from repro.feast.runner import run_experiment

GRAPHS = n_graphs()
SIZES = system_sizes()


def bench_figure3(benchmark):
    (config,) = build_experiment(
        "figure3", n_graphs=GRAPHS, system_sizes=SIZES
    )
    result = run_once(benchmark, run_experiment, config)
    print()
    print(lateness_report(result))

    means = mean_max_lateness(result.records)
    large = max(SIZES)
    small = min(SIZES)

    for scenario in config.scenarios:
        # Too much surplus hurts at saturation: d=4 worse than d=1.
        assert means[(scenario, "THRES(d=1)", large)] <= (
            means[(scenario, "THRES(d=4)", large)]
        ), scenario
        # The trade-off: the d=4 penalty is smaller (or negative) on the
        # smallest system than at saturation.
        gap_small = (
            means[(scenario, "THRES(d=4)", small)]
            - means[(scenario, "THRES(d=1)", small)]
        )
        gap_large = (
            means[(scenario, "THRES(d=4)", large)]
            - means[(scenario, "THRES(d=1)", large)]
        )
        assert gap_small <= gap_large + 1e-9, scenario
