"""Optimality gap: deadline distribution + list scheduling vs exact B&B.

On small graphs (where the branch-and-bound comparator of Section 2's
related work is tractable) we can measure exactly how much maximum
lateness the heuristic pipeline leaves on the table, per metric. Both
sides run on the contention-free interconnect the exact search is defined
for, so the comparison is apples-to-apples.

Asserted: the exact schedule is never worse than any heuristic (sanity of
the B&B), and the heuristics' mean gap stays within a generous bound — the
pipeline is a *good* heuristic, not an arbitrary one.
"""

import random
import statistics

from _scale import run_once

from repro.core import ast, bst
from repro.graph import RandomGraphConfig, generate_task_graph
from repro.machine import IdealNetwork, System
from repro.sched import ListScheduler
from repro.sched.optimal import BranchAndBoundScheduler

N_GRAPHS = 10
N_PROCESSORS = 3
CONFIG = RandomGraphConfig(
    n_subtasks_range=(8, 9), depth_range=(3, 4),
)
#: Mean allowed excess of heuristic max lateness over exact, in MET units.
GAP_BOUND_METS = 1.5


def bench_optimality_gap(benchmark):
    graphs = [
        generate_task_graph(CONFIG, rng=random.Random(1000 + i))
        for i in range(N_GRAPHS)
    ]
    system = System(N_PROCESSORS, interconnect=IdealNetwork(N_PROCESSORS))
    methods = {"PURE": bst("PURE", "CCNE"), "ADAPT": ast("ADAPT")}

    def run():
        gaps = {label: [] for label in methods}
        unproven = 0
        for graph in graphs:
            for label, distributor in methods.items():
                assignment = distributor.distribute(
                    graph, n_processors=N_PROCESSORS
                )
                heuristic = ListScheduler(system).schedule(graph, assignment)
                heuristic_lateness = max(
                    heuristic.finish_time(n) - assignment.absolute_deadline(n)
                    for n in graph.node_ids()
                )
                exact = BranchAndBoundScheduler(
                    System(N_PROCESSORS), node_limit=2_000_000
                ).schedule(graph, assignment)
                if not exact.proven_optimal:
                    unproven += 1
                gaps[label].append(heuristic_lateness - exact.max_lateness)
        return gaps, unproven

    gaps, unproven = run_once(benchmark, run)
    print()
    print(f"optimality gap over {N_GRAPHS} graphs "
          f"({N_PROCESSORS} processors, contention-free network):")
    for label, values in gaps.items():
        print(
            f"  {label:<6} mean gap {statistics.mean(values):8.2f}   "
            f"max gap {max(values):8.2f}   exact in {N_GRAPHS - unproven}"
            f"/{N_GRAPHS} searches"
        )

    met = CONFIG.mean_execution_time
    for label, values in gaps.items():
        # The exact search can never lose to the heuristic...
        assert min(values) >= -1e-6, (label, min(values))
        # ...and the heuristic stays close to it on average.
        assert statistics.mean(values) <= GAP_BOUND_METS * met, (label, values)
