"""The parallel trial engine: serial-vs-parallel throughput and identity.

Runs a Figure-5-sized sweep (PURE / THRES / ADAPT over the size sweep and
all three scenarios) through both engines and reports trials/second and
the speedup. Two assertions:

1. **Record identity** — always: `jobs=N` must reproduce the serial
   records exactly, in order (the engine's core guarantee).
2. **Throughput** — on hosts with >= 8 cores, the parallel engine must be
   at least 3x faster than serial; skipped on smaller boxes where the
   hardware cannot express the speedup.

Scale with ``REPRO_GRAPHS`` / ``REPRO_SIZES`` as usual.
"""

import os

from _scale import n_graphs, run_once, system_sizes

from repro.feast import build_experiment
from repro.feast.parallel import default_jobs
from repro.feast.runner import run_experiment

GRAPHS = n_graphs(16)
SIZES = system_sizes()

#: Acceptance target on an 8-core machine.
MIN_SPEEDUP = 3.0
MIN_CORES_FOR_SPEEDUP_CHECK = 8


def bench_parallel_runner(benchmark):
    (config,) = build_experiment(
        "figure5", n_graphs=GRAPHS, system_sizes=SIZES
    )
    serial = run_experiment(config, jobs=1)
    jobs = default_jobs()
    parallel = run_once(benchmark, run_experiment, config, jobs=jobs)

    assert [r.as_dict() for r in parallel.records] == [
        r.as_dict() for r in serial.records
    ], "parallel records diverge from serial"

    speedup = serial.elapsed_seconds / max(parallel.elapsed_seconds, 1e-9)
    print()
    print(
        f"trials={config.n_trials}  "
        f"serial={serial.elapsed_seconds:.2f}s "
        f"({config.n_trials / serial.elapsed_seconds:.1f} trials/s)  "
        f"parallel[{jobs}]={parallel.elapsed_seconds:.2f}s "
        f"({config.n_trials / parallel.elapsed_seconds:.1f} trials/s)  "
        f"speedup={speedup:.2f}x"
    )
    print(f"worker phase totals: {parallel.timings.as_dict()}")

    cores = os.cpu_count() or 1
    if cores >= MIN_CORES_FOR_SPEEDUP_CHECK:
        assert speedup >= MIN_SPEEDUP, (
            f"{speedup:.2f}x < {MIN_SPEEDUP}x on a {cores}-core host"
        )
