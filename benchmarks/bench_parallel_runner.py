"""The execution backends: per-backend throughput and record identity.

Runs a Figure-5-sized sweep (PURE / THRES / ADAPT over the size sweep and
all three scenarios) through every registered backend and reports a
per-backend trials/second table. Two assertions:

1. **Record identity** — always: every backend (pool with `jobs=N`,
   subprocess with `--shards`) must reproduce the serial records
   exactly, in order (the engine's core guarantee).
2. **Throughput** — on hosts with >= 8 cores, the pool backend must be
   at least 3x faster than serial; skipped on smaller boxes where the
   hardware cannot express the speedup.

Scale with ``REPRO_GRAPHS`` / ``REPRO_SIZES`` as usual.
"""

import os

from _scale import n_graphs, run_once, system_sizes

from repro.feast import build_experiment
from repro.feast.parallel import default_jobs
from repro.feast.runner import run_experiment

GRAPHS = n_graphs(16)
SIZES = system_sizes()

#: Acceptance target on an 8-core machine.
MIN_SPEEDUP = 3.0
MIN_CORES_FOR_SPEEDUP_CHECK = 8


def bench_parallel_runner(benchmark):
    (config,) = build_experiment(
        "figure5", n_graphs=GRAPHS, system_sizes=SIZES
    )
    serial = run_experiment(config, jobs=1)
    jobs = default_jobs()
    parallel = run_once(benchmark, run_experiment, config, jobs=jobs)

    assert [r.as_dict() for r in parallel.records] == [
        r.as_dict() for r in serial.records
    ], "parallel records diverge from serial"

    shards = min(4, jobs)
    sharded = run_experiment(config, backend="subprocess", shards=shards)
    assert [r.as_dict() for r in sharded.records] == [
        r.as_dict() for r in serial.records
    ], f"subprocess[{shards}] records diverge from serial"

    rows = [
        ("serial", 1, serial),
        (f"pool[{jobs}]", jobs, parallel),
        (f"subprocess[{shards}]", shards, sharded),
    ]
    speedup = serial.elapsed_seconds / max(parallel.elapsed_seconds, 1e-9)
    print()
    print(f"trials={config.n_trials}")
    print(f"{'backend':<16} {'seconds':>8} {'trials/s':>9} {'speedup':>8}")
    for label, _, result in rows:
        elapsed = max(result.elapsed_seconds, 1e-9)
        print(
            f"{label:<16} {result.elapsed_seconds:>8.2f} "
            f"{config.n_trials / elapsed:>9.1f} "
            f"{serial.elapsed_seconds / elapsed:>7.2f}x"
        )
    print(f"worker phase totals: {parallel.timings.as_dict()}")

    cores = os.cpu_count() or 1
    if cores >= MIN_CORES_FOR_SPEEDUP_CHECK:
        assert speedup >= MIN_SPEEDUP, (
            f"{speedup:.2f}x < {MIN_SPEEDUP}x on a {cores}-core host"
        )
