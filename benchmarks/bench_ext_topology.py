"""Section 8 extension: interconnect topologies.

Regenerates PURE vs ADAPT panels on bus, fully-connected, ring and mesh
interconnects and asserts (a) ADAPT stays competitive at the smallest size
on every topology, and (b) richer connectivity never hurts: at the largest
size the fully-connected network's lateness is no worse than the single
shared bus's (same workload, strictly more communication capacity).
"""

from _scale import run_once, n_graphs, system_sizes

from repro.feast import build_experiment, lateness_report, mean_max_lateness
from repro.feast.runner import run_experiment

GRAPHS = n_graphs(16)
SIZES = system_sizes("2,4,8,16")

TOLERANCE = 0.08


def bench_ext_topology(benchmark):
    configs = build_experiment(
        "ext-topology", n_graphs=GRAPHS, system_sizes=SIZES
    )

    def run_all():
        return [run_experiment(config) for config in configs]

    results = run_once(benchmark, run_all)
    small, large = min(SIZES), max(SIZES)
    adapt_at_large = {}
    print()
    for config, result in zip(configs, results):
        print(lateness_report(result))
        print()
        means = mean_max_lateness(result.records)
        pure = means[("MDET", "PURE", small)]
        adapt = means[("MDET", "ADAPT", small)]
        assert adapt <= pure + TOLERANCE * abs(pure), (config.name, pure, adapt)
        adapt_at_large[config.topology] = means[("MDET", "ADAPT", large)]

    assert adapt_at_large["fully-connected"] <= adapt_at_large["bus"] + 1e-6, (
        adapt_at_large
    )
