"""Section 8 extension: task-graph parallelism sweep.

Regenerates PURE vs ADAPT panels for wide (shallow), paper-shaped and deep
(chain-like) graphs. The paper's story: ADAPT's advantage lives exactly
where graph parallelism exceeds the platform — so the *wide* preset should
show the largest small-system gain, and the *deep* preset the smallest.
"""

from _scale import run_once, n_graphs, system_sizes

from repro.feast import build_experiment, lateness_report, mean_max_lateness
from repro.feast.runner import run_experiment

GRAPHS = n_graphs(16)
SIZES = system_sizes("2,4,8,16")


def bench_ext_parallelism(benchmark):
    configs = build_experiment(
        "ext-parallelism", n_graphs=GRAPHS, system_sizes=SIZES
    )

    def run_all():
        return [run_experiment(config) for config in configs]

    results = run_once(benchmark, run_all)
    small = min(SIZES)
    gains = {}
    print()
    for config, result in zip(configs, results):
        print(lateness_report(result))
        print()
        means = mean_max_lateness(result.records)
        pure = means[("MDET", "PURE", small)]
        adapt = means[("MDET", "ADAPT", small)]
        shape = config.name.rsplit("-", 1)[-1]
        gains[shape] = pure - adapt  # positive = ADAPT better

    # The wide preset benefits at least as much as the deep preset.
    assert gains["wide"] >= gains["deep"] - 1e-6, gains
