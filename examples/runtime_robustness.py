#!/usr/bin/env python3
"""Run-time robustness: from static margins to execution traces.

The static evaluation measures lateness assuming worst-case execution
times. This example takes one workload through the run-time questions a
system integrator asks next:

1. How much can the whole workload grow before deadlines break?
   (the *critical scaling factor*, and the analytic window bound)
2. Which subtasks are the fragile ones? (per-subtask growth margins)
3. What actually happens at run time when executions come in under WCET?
   (the discrete-event executive with execution-time jitter)
4. Does preempting help once the placement is fixed? (preemptive replay)

Run:  python examples/runtime_robustness.py
"""

import random

from repro import (
    ListScheduler,
    RandomGraphConfig,
    System,
    ast,
    generate_task_graph,
    max_lateness,
)
from repro.core.sensitivity import (
    critical_scaling_factor,
    per_subtask_margins,
    window_scaling_factor,
)
from repro.sched.simulator import (
    JitterModel,
    allocation_of,
    simulate_dynamic,
    simulate_fixed,
)

N_PROCESSORS = 4


def main() -> None:
    graph = generate_task_graph(RandomGraphConfig(), rng=random.Random(17))
    distributor = ast("ADAPT")
    assignment = distributor.distribute(graph, n_processors=N_PROCESSORS)
    system = System(N_PROCESSORS)

    static = ListScheduler(system).schedule(graph, assignment)
    print(f"workload: {graph!r}")
    print(f"static schedule: makespan={static.makespan():.1f}, "
          f"max lateness={max_lateness(static, assignment):.1f}")

    # 1. Workload growth tolerance.
    analytic = window_scaling_factor(assignment)
    empirical = critical_scaling_factor(
        graph, system,
        lambda g: distributor.distribute(g, n_processors=N_PROCESSORS),
        tolerance=0.01,
    )
    print(f"\nworkload growth tolerance:")
    print(f"  analytic window bound (placement-free): x{analytic:.2f}")
    print(f"  empirical critical scaling factor:      x{empirical:.2f}")

    # 2. Fragile subtasks.
    print("\nfive tightest subtask windows (growth factor = window/cost):")
    for margin in per_subtask_margins(assignment)[:5]:
        print(
            f"  {margin.node_id:<8} cost={margin.cost:6.1f}  "
            f"window={margin.relative_deadline:6.1f}  "
            f"tolerates x{margin.growth_factor:.2f}"
        )

    # 3. Run-time execution with under-WCET jitter.
    print("\ndynamic executive, actual execution times below WCET:")
    for low, high in ((1.0, 1.0), (0.6, 1.0), (0.4, 0.8)):
        trace = simulate_dynamic(
            graph, assignment, system,
            jitter=JitterModel(low=low, high=high, seed=5),
        )
        print(
            f"  actual in [{low:.0%}, {high:.0%}] of WCET: "
            f"makespan={trace.makespan():7.1f}  "
            f"max lateness={trace.max_lateness(assignment):7.1f}"
        )

    # 4. Preemptive vs non-preemptive replay of the static placement.
    allocation = allocation_of(static)
    print("\nfixed-allocation replay:")
    for preemptive in (False, True):
        trace = simulate_fixed(
            graph, assignment, system, allocation, preemptive=preemptive
        )
        mode = "preemptive   " if preemptive else "non-preemptive"
        print(
            f"  {mode}: max lateness={trace.max_lateness(assignment):7.1f}  "
            f"preemptions={trace.preemptions}"
        )


if __name__ == "__main__":
    main()
