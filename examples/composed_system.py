#!/usr/bin/env python3
"""Composing a distributed application from reusable fragments.

A system integrator's workflow end to end:

1. build reusable application fragments (each with its own timing
   contract — release and deadline anchors);
2. compose them into one system graph, wiring cross-fragment data flows
   (fragment deadlines survive as interior anchors, which the distribution
   layer honours);
3. distribute deadlines, schedule, and certify;
4. compare two candidate configurations structurally with the schedule
   diff, and emit a markdown report of the sweep.

Run:  python examples/composed_system.py
"""

import io

from repro import ListScheduler, System, ast, bst, max_lateness
from repro.graph import TaskGraph
from repro.graph.transform import compose
from repro.sched.diff import diff_schedules
from repro.sched.schedulability import analyze_placement

N_PROCESSORS = 3


def imu_fragment() -> TaskGraph:
    """Inertial measurement: sample -> integrate, 25-unit contract."""
    g = TaskGraph("imu")
    g.add_subtask("sample", wcet=2.0, release=0.0, pinned_to=0)
    g.add_subtask("integrate", wcet=6.0, end_to_end_deadline=25.0)
    g.add_edge("sample", "integrate", message_size=2.0)
    return g


def gps_fragment() -> TaskGraph:
    """GNSS: acquire -> solve, 60-unit contract."""
    g = TaskGraph("gps")
    g.add_subtask("acquire", wcet=4.0, release=0.0, pinned_to=0)
    g.add_subtask("solve", wcet=14.0, end_to_end_deadline=60.0)
    g.add_edge("acquire", "solve", message_size=4.0)
    return g


def nav_fragment() -> TaskGraph:
    """Navigation: fuse -> guidance -> surface commands, 140-unit contract."""
    g = TaskGraph("nav")
    g.add_subtask("fuse", wcet=16.0, release=0.0)
    g.add_subtask("guide", wcet=22.0)
    g.add_subtask("surfaces", wcet=5.0, end_to_end_deadline=140.0,
                  pinned_to=1)
    g.add_edge("fuse", "guide", message_size=3.0)
    g.add_edge("guide", "surfaces", message_size=2.0)
    return g


def main() -> None:
    system_graph = compose(
        {"imu": imu_fragment(), "gps": gps_fragment(), "nav": nav_fragment()},
        arcs=[
            ("imu", "integrate", "nav", "fuse", 3.0),
            ("gps", "solve", "nav", "fuse", 3.0),
        ],
        name="nav-stack",
    )
    print(f"composed system: {system_graph!r}")
    print(f"  fragment contracts kept as interior anchors: "
          f"{sorted(n for n in system_graph.node_ids() if system_graph.node(n).end_to_end_deadline is not None)}")

    system = System(N_PROCESSORS)
    candidates = {}
    for label, distributor in (
        ("PURE", bst("PURE", "CCNE")),
        ("ADAPT", ast("ADAPT")),
    ):
        assignment = distributor.distribute(
            system_graph, n_processors=N_PROCESSORS
        )
        schedule = ListScheduler(system).schedule(system_graph, assignment)
        schedule.validate()
        report = analyze_placement(assignment, schedule)
        candidates[label] = (assignment, schedule)
        print(
            f"\n{label}: max lateness={max_lateness(schedule, assignment):.1f} "
            f"makespan={schedule.makespan():.1f} "
            f"placement certified={report.schedulable}"
        )
        # Fragment contracts: interior anchors must hold in the schedule.
        for node_id in ("imu:integrate", "gps:solve"):
            anchor = system_graph.node(node_id).end_to_end_deadline
            finish = schedule.finish_time(node_id)
            status = "OK " if finish <= anchor else "MISS"
            print(f"  {status} {node_id:<15} finish={finish:6.1f} "
                  f"contract={anchor:g}")

    diff = diff_schedules(
        candidates["PURE"][1], candidates["ADAPT"][1],
        candidates["PURE"][0], candidates["ADAPT"][0],
    )
    print(f"\nPURE -> ADAPT structural diff:\n  {diff.summary()}")
    for delta in diff.migrations:
        print(
            f"  migrated {delta.node_id}: "
            f"P{delta.processor_before} -> P{delta.processor_after}"
        )


if __name__ == "__main__":
    main()
