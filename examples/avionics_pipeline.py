#!/usr/bin/env python3
"""A flight-control application: periodic tasks, pinned I/O, hyperperiod.

The paper motivates relaxed locality constraints with mission-critical
systems where only sensor/actuator subtasks are bound to specific
processors. This example builds such a system by hand:

* a 40 Hz inner control loop  (period 25):  gyro -> attitude -> servo
* a 20 Hz guidance task       (period 50):  GPS + attitude fusion -> guidance
* cross-task data flow from the control loop's attitude estimate into the
  guidance task (different rates - the LCM transform handles it)

Sensor and actuator subtasks are pinned to the I/O processors 0 and 1
(strict locality); everything else is relaxed. The periodic system is
unrolled over one hyperperiod, deadlines are distributed with AST, and the
whole thing is scheduled on a 3-processor shared-bus platform.

Run:  python examples/avionics_pipeline.py
"""

from repro import ListScheduler, System, ast, schedule_metrics
from repro.graph import CrossTaskArc, PeriodicTask, TaskGraph, hyperperiod, unroll
from repro.sched.analysis import end_to_end_lateness

N_PROCESSORS = 3
IO_PROC_SENSORS = 0
IO_PROC_ACTUATORS = 1


def control_loop() -> TaskGraph:
    """gyro(2) -> attitude(6) -> servo(3); deadline 20 within period 25."""
    g = TaskGraph(name="control")
    g.add_subtask("gyro", wcet=2.0, release=0.0, pinned_to=IO_PROC_SENSORS)
    g.add_subtask("attitude", wcet=6.0)
    g.add_subtask(
        "servo", wcet=3.0, end_to_end_deadline=20.0,
        pinned_to=IO_PROC_ACTUATORS,
    )
    g.add_edge("gyro", "attitude", message_size=2.0)
    g.add_edge("attitude", "servo", message_size=1.0)
    return g


def guidance_task() -> TaskGraph:
    """gps(3) + fusion(8) -> guidance(5); deadline 45 within period 50."""
    g = TaskGraph(name="guidance")
    g.add_subtask("gps", wcet=3.0, release=0.0, pinned_to=IO_PROC_SENSORS)
    g.add_subtask("fusion", wcet=8.0)
    g.add_subtask("guidance", wcet=5.0, end_to_end_deadline=45.0)
    g.add_edge("gps", "fusion", message_size=2.0)
    g.add_edge("fusion", "guidance", message_size=2.0)
    return g


def main() -> None:
    tasks = [
        PeriodicTask("CTL", control_loop(), period=25.0),
        PeriodicTask("GDN", guidance_task(), period=50.0),
    ]
    arcs = [
        # The attitude estimate feeds the guidance fusion (rate transition
        # 40 Hz -> 20 Hz: only the in-window control instance connects).
        CrossTaskArc("CTL", "attitude", "GDN", "fusion", message_size=1.0),
    ]
    length = hyperperiod([t.period for t in tasks])
    print(f"hyperperiod: {length:.0f} time units")

    graph = unroll(tasks, arcs, name="flight-control")
    print(f"unrolled workload: {graph!r}")
    print(f"  pinned subtasks (strict locality): {len(graph.pinned_subtasks())}"
          f"/{graph.n_subtasks}")

    assignment = ast("ADAPT").distribute(graph, n_processors=N_PROCESSORS)
    schedule = ListScheduler(System(N_PROCESSORS)).schedule(graph, assignment)
    schedule.validate()

    metrics = schedule_metrics(schedule, assignment)
    print(f"\nschedule: makespan={metrics.makespan:.1f}, "
          f"max lateness={metrics.max_lateness:.1f}, "
          f"late={metrics.n_late}/{metrics.n_subtasks}")

    print("\nend-to-end lateness per output instance (negative = met):")
    for node_id, lateness in sorted(end_to_end_lateness(schedule).items()):
        status = "OK " if lateness <= 0 else "MISS"
        print(f"  {status} {node_id:<18} {lateness:+7.1f}")

    print("\nGantt (P0=sensors, P1=actuators, P2=compute):")
    print(schedule.gantt())

    missed = [n for n, l in end_to_end_lateness(schedule).items() if l > 0]
    if missed:
        raise SystemExit(f"deadline misses: {missed}")
    print("\nall end-to-end deadlines met.")


if __name__ == "__main__":
    main()
