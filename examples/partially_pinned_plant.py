#!/usr/bin/env python3
"""Relaxed vs strict locality: sweeping the pinned fraction.

The paper's setting sits between two classical extremes:

* fully relaxed - no subtask is pre-assigned (pure task-assignment
  freedom, what most of the evaluation uses), and
* fully strict - every subtask is pre-assigned (the BST assumption, under
  which the slicing technique is provably optimal).

This example pins a growing random fraction of each workload's subtasks
and watches what the lost assignment freedom costs: the list scheduler can
no longer co-locate communicating subtasks or balance load, so lateness
degrades toward the strict end - exactly why deadline distribution that
works *before* assignment matters.

Run:  python examples/partially_pinned_plant.py
"""

import random
import statistics

from repro import (
    ListScheduler,
    RandomGraphConfig,
    System,
    ast,
    bst,
    max_lateness,
)
from repro.core.pinning import pin_random_fraction
from repro.graph import generate_task_graphs

N_PROCESSORS = 4
N_GRAPHS = 16
FRACTIONS = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0)


def main() -> None:
    base_graphs = generate_task_graphs(N_GRAPHS, RandomGraphConfig(), seed=33)
    system = System(N_PROCESSORS)
    methods = {"PURE": bst("PURE", "CCNE"), "ADAPT": ast("ADAPT")}

    print(
        f"{N_GRAPHS} workloads on {N_PROCESSORS} processors; pins drawn "
        "uniformly at random\n"
    )
    print("mean max task lateness by strictly-pinned fraction:")
    print(f"{'pinned':>8}" + "".join(f"{m:>10}" for m in methods))

    for fraction in FRACTIONS:
        row = f"{fraction:>7.0%} "
        for label, distributor in methods.items():
            values = []
            for index, graph in enumerate(base_graphs):
                pinned = pin_random_fraction(
                    graph, fraction, N_PROCESSORS,
                    rng=random.Random(1000 + index),
                )
                assignment = distributor.distribute(
                    pinned, n_processors=N_PROCESSORS
                )
                schedule = ListScheduler(system).schedule(pinned, assignment)
                values.append(max_lateness(schedule, assignment))
            row += f"{statistics.mean(values):>10.1f}"
        print(row)

    print(
        "\nreading: at 0% the scheduler owns every placement decision; at "
        "100% the\nplacement is a random pre-assignment and the distribution "
        "must absorb the\nresulting communication. The estimators still "
        "exploit whatever pins exist:\npinned co-located pairs are known to "
        "be free, pinned split pairs are known\nto pay the bus."
    )


if __name__ == "__main__":
    main()
