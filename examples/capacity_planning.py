#!/usr/bin/env python3
"""Capacity planning: how many processors does this application need?

Uses the off-line schedulability analysis to answer the platform-sizing
question before committing hardware:

* the demand-derived lower bound on processors (no placement can do with
  fewer);
* the empirical answer (smallest platform where the full pipeline meets
  every distributed deadline);
* a per-processor certification of the chosen placement (the preemptive-
  EDF demand criterion, necessary and sufficient per processor).

Run:  python examples/capacity_planning.py
"""

import random

from repro import (
    ListScheduler,
    RandomGraphConfig,
    System,
    ast,
    max_lateness,
)
from repro.graph import generate_task_graph, graph_stats
from repro.sched.schedulability import (
    analyze_placement,
    analyze_platform,
    min_processors_needed,
)

MAX_PLATFORM = 16


def main() -> None:
    graph = generate_task_graph(
        # A tighter application than the paper default: laxity 1.1.
        RandomGraphConfig(overall_laxity_ratio=1.1),
        rng=random.Random(4),
    )
    stats = graph_stats(graph)
    distributor = ast("ADAPT")
    print(f"application: {graph!r}")
    print(f"  parallelism={stats.average_parallelism:.2f} "
          f"workload={stats.total_workload:.0f} "
          f"critical path={stats.longest_path_execution_time:.0f}")

    # The distribution itself depends on the platform size (ADAPT), so the
    # analysis sweeps candidate platforms.
    print(f"\n{'procs':>6} {'demand bound':>13} {'utilization':>12} "
          f"{'max lateness':>13}  verdict")
    smallest_feasible = None
    for n in range(1, MAX_PLATFORM + 1):
        assignment = distributor.distribute(graph, n_processors=n)
        platform_report = analyze_platform(assignment, n_processors=n)
        schedule = ListScheduler(System(n)).schedule(graph, assignment)
        lateness = max_lateness(schedule, assignment)
        feasible = lateness <= 0
        if feasible and smallest_feasible is None:
            smallest_feasible = n
        bound = min_processors_needed(assignment)
        verdict = "meets all deadlines" if feasible else (
            "provably infeasible" if not platform_report.schedulable
            else "misses deadlines"
        )
        print(
            f"{n:>6} {bound:>13} {platform_report.utilization:>11.0%} "
            f"{lateness:>13.1f}  {verdict}"
        )
        if feasible and n >= 2:
            break

    assert smallest_feasible is not None, "no feasible platform found"
    print(f"\nsmallest feasible platform: {smallest_feasible} processors")

    # Certify the chosen placement per processor.
    assignment = distributor.distribute(graph, n_processors=smallest_feasible)
    schedule = ListScheduler(System(smallest_feasible)).schedule(
        graph, assignment
    )
    report = analyze_placement(assignment, schedule)
    print(
        "per-processor demand criterion on the chosen placement: "
        + ("PASS (certified under preemptive EDF)" if report.schedulable
           else f"violations: {[str(v) for v in report.violations[:3]]}")
    )


if __name__ == "__main__":
    main()
