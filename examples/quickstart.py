#!/usr/bin/env python3
"""Quickstart: the full pipeline on one random workload.

Generates one paper-style task graph, distributes its end-to-end deadlines
with the Adaptive Slicing Technique (ADAPT metric over CCNE estimation),
schedules it on a 4-processor shared-bus platform with the deadline-driven
list scheduler, and reports the distribution and schedule quality.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    ListScheduler,
    RandomGraphConfig,
    System,
    ast,
    generate_task_graph,
    graph_stats,
    max_lateness,
    schedule_metrics,
    validate_assignment,
)

N_PROCESSORS = 4


def main() -> None:
    # 1. A workload: 40-60 subtasks, MET 20, depth 8-12, OLR 1.5, CCR 1.0
    #    (the paper's Section 5.2 defaults).
    graph = generate_task_graph(RandomGraphConfig(), rng=random.Random(7))
    stats = graph_stats(graph)
    print(f"generated {graph!r}")
    print(
        f"  depth={stats.depth}  avg parallelism={stats.average_parallelism:.2f}"
        f"  total workload={stats.total_workload:.0f}"
    )

    # 2. Deadline distribution BEFORE task assignment (the paper's point):
    #    AST = ADAPT metric + no assumed communication cost.
    distributor = ast("ADAPT")
    assignment = distributor.distribute(graph, n_processors=N_PROCESSORS)
    report = validate_assignment(assignment)
    print(f"\ndistributed deadlines with {assignment.metric_name}"
          f"/{assignment.comm_strategy_name}:")
    print(f"  slices committed: {assignment.n_slices()}")
    print(f"  minimum subtask laxity: {assignment.min_laxity():.1f}")
    print(f"  structurally valid: {report.ok}")

    # 3. Task assignment + scheduling: deadline-driven list scheduling on a
    #    homogeneous shared-bus multiprocessor.
    system = System(N_PROCESSORS)
    schedule = ListScheduler(system).schedule(graph, assignment)
    schedule.validate()

    # 4. The paper's quality measure: maximum task lateness (negative is
    #    good - it is the margin to infeasibility).
    metrics = schedule_metrics(schedule, assignment)
    print(f"\nscheduled on {system!r}:")
    print(f"  makespan:          {metrics.makespan:.1f}")
    print(f"  max task lateness: {metrics.max_lateness:.1f}")
    print(f"  late subtasks:     {metrics.n_late}/{metrics.n_subtasks}")
    print(f"  mean utilization:  {metrics.mean_utilization:.0%}")
    assert metrics.max_lateness == max_lateness(schedule, assignment)

    print("\nGantt chart:")
    print(schedule.gantt())


if __name__ == "__main__":
    main()
