#!/usr/bin/env python3
"""Interconnect study: the same workload across four topologies.

Section 8 of the paper reports that AST scales across interconnection
topologies. This example distributes one batch of workloads once per
topology and compares how the platform's communication structure shifts
the lateness picture: a single shared bus serializes every transfer, a
fully-connected network only pays per-pair latency, ring and mesh sit in
between with multi-hop store-and-forward routes.

Run:  python examples/topology_study.py
"""

import statistics

from repro import (
    ListScheduler,
    RandomGraphConfig,
    System,
    ast,
    make_interconnect,
    max_lateness,
)
from repro.graph import generate_task_graphs

TOPOLOGIES = ("bus", "fully-connected", "ring", "mesh", "ideal")
SIZES = (2, 4, 8, 16)
N_GRAPHS = 16


def main() -> None:
    graphs = generate_task_graphs(N_GRAPHS, RandomGraphConfig(), seed=21)
    print(f"{N_GRAPHS} workloads, ADAPT distribution, EDF list scheduling\n")
    header = f"{'procs':>6}" + "".join(f"{t:>17}" for t in TOPOLOGIES)
    print("mean max task lateness (more negative = more margin):")
    print(header)

    distributor = ast("ADAPT")
    for size in SIZES:
        row = f"{size:>6}"
        for topology in TOPOLOGIES:
            system = System(size, interconnect=make_interconnect(topology, size))
            values = []
            for graph in graphs:
                assignment = distributor.distribute(graph, n_processors=size)
                schedule = ListScheduler(system).schedule(graph, assignment)
                values.append(max_lateness(schedule, assignment))
            row += f"{statistics.mean(values):>17.1f}"
        print(row)

    print(
        "\nreading: 'ideal' bounds what any topology could achieve "
        "(no contention);\nthe gap between 'bus' and 'ideal' is the price "
        "of serializing transfers\non one medium, and it narrows as the "
        "scheduler co-locates communicating\nsubtasks on small systems."
    )


if __name__ == "__main__":
    main()
