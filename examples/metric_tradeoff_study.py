#!/usr/bin/env python3
"""Metric trade-off study: when does ADAPT beat PURE, and by how much?

A condensed version of the paper's Figure 5 story, run through the public
experiment API: sweep the system size for PURE, THRES and ADAPT over the
three execution-time scenarios and print both the lateness panels and the
relative improvement of the AST metrics over BST's best metric (PURE).

Run:  python examples/metric_tradeoff_study.py           (fast, 16 graphs)
      REPRO_GRAPHS=128 python examples/metric_tradeoff_study.py   (paper scale)
"""

import os

from repro.feast import (
    build_experiment,
    improvement_over,
    lateness_report,
    run_experiment,
)

N_GRAPHS = int(os.environ.get("REPRO_GRAPHS", "16"))
SIZES = (2, 3, 4, 6, 8, 12, 16)


def main() -> None:
    (config,) = build_experiment(
        "figure5", n_graphs=N_GRAPHS, system_sizes=SIZES
    )
    print(f"running {config.n_trials} trials ({N_GRAPHS} graphs/combination)")
    result = run_experiment(config)
    print()
    print(lateness_report(result))

    improvements = improvement_over(result.records, baseline_method="PURE")
    print("\nrelative improvement of the AST metrics over PURE")
    print("(positive = better margin than PURE; the paper reports up to")
    print(" 100% for small systems where parallelism cannot be exploited):")
    header = f"{'scenario':<10}{'procs':>6}" + "".join(
        f"{m:>10}" for m in ("THRES", "ADAPT")
    )
    print(header)
    for scenario in config.scenarios:
        for size in SIZES:
            row = f"{scenario:<10}{size:>6}"
            for method in ("THRES", "ADAPT"):
                value = improvements.get((scenario, method, size))
                row += f"{value:>+10.1%}" if value is not None else f"{'-':>10}"
            print(row)

    # Where is the crossover? THRES should fall behind PURE as the system
    # grows; ADAPT should track PURE.
    print("\ncrossovers (first size where the metric stops beating PURE):")
    for scenario in config.scenarios:
        for method in ("THRES", "ADAPT"):
            cross = next(
                (
                    s for s in SIZES
                    if improvements.get((scenario, method, s), 0) < 0
                ),
                None,
            )
            print(f"  {scenario} {method}: "
                  f"{cross if cross is not None else 'never (within sweep)'}")


if __name__ == "__main__":
    main()
